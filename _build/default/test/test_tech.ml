(* Tests for chop_tech: component libraries, chip packages, memory modules,
   clocking, the PLA model, the wiring model and the Table 1/2 data. *)

open Chop_tech

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Component *)

let test_component_make_validates () =
  (match Component.make ~name:"x" ~cls:"add" ~width:0 ~area:1. ~delay:1. () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "width 0 accepted");
  (match Component.make ~name:"x" ~cls:"add" ~width:8 ~area:0. ~delay:1. () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "area 0 accepted");
  match Component.make ~name:"x" ~cls:"add" ~width:8 ~area:1. ~delay:0. () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "delay 0 accepted"

let test_component_default_power () =
  let c = Component.make ~name:"x" ~cls:"add" ~width:8 ~area:2000. ~delay:10. () in
  check_float "area/1000" 2. c.Component.power

let test_alternatives_sorted_by_speed () =
  let alts = Component.alternatives Mosis.experiment_library ~cls:"mult" in
  Alcotest.(check (list string)) "fastest first"
    [ "mul1"; "mul2"; "mul3" ]
    (List.map (fun c -> c.Component.cname) alts)

let test_classes () =
  Alcotest.(check (list string)) "classes"
    [ "add"; "mult"; "mux"; "register" ]
    (Component.classes Mosis.experiment_library)

let test_covers () =
  let g = Chop_dfg.Benchmarks.ar_lattice_filter () in
  Alcotest.(check bool) "covered" true (Component.covers Mosis.experiment_library g);
  let tiny = [ Component.make ~name:"a" ~cls:"add" ~width:16 ~area:1. ~delay:1. () ] in
  Alcotest.(check bool) "mult missing" false (Component.covers tiny g)

let test_module_sets_nine () =
  let g = Chop_dfg.Benchmarks.ar_lattice_filter () in
  let sets = Component.module_sets Mosis.experiment_library g in
  (* 3 adders x 3 multipliers = 9 module-set configurations (paper, 3.2) *)
  Alcotest.(check int) "9 sets" 9 (List.length sets);
  List.iter
    (fun set -> Alcotest.(check int) "one per class" 2 (List.length set))
    sets

let test_module_sets_uncovered_empty () =
  let g = Chop_dfg.Benchmarks.ar_lattice_filter () in
  Alcotest.(check int) "no sets" 0 (List.length (Component.module_sets [] g))

let test_find () =
  let c = Component.find Mosis.experiment_library ~name:"add2" in
  check_float "area" 2880. c.Component.area;
  Alcotest.check_raises "missing" Not_found (fun () ->
      ignore (Component.find Mosis.experiment_library ~name:"nope"))

let test_rescale_adder_linear () =
  let add2 = Component.find Mosis.experiment_library ~name:"add2" in
  let w32 = Component.rescale ~width:32 add2 in
  check_float "area doubles" (2. *. 2880.) w32.Component.area;
  check_float "delay doubles" (2. *. 53.) w32.Component.delay;
  Alcotest.(check int) "width" 32 w32.Component.width

let test_rescale_multiplier_quadratic () =
  let mul2 = Component.find Mosis.experiment_library ~name:"mul2" in
  let w8 = Component.rescale ~width:8 mul2 in
  check_float "area quarters" (9800. /. 4.) w8.Component.area;
  check_float "delay halves" (2950. /. 2.) w8.Component.delay

let test_rescale_identity_and_errors () =
  let add1 = Component.find Mosis.experiment_library ~name:"add1" in
  Alcotest.(check string) "same width untouched" "add1"
    (Component.rescale ~width:16 add1).Component.cname;
  match Component.rescale ~width:0 add1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "width 0 accepted"

let test_rescale_library () =
  let lib8 = Component.rescale_library ~width:8 Mosis.experiment_library in
  Alcotest.(check int) "same entry count"
    (List.length Mosis.experiment_library) (List.length lib8);
  (* 1-bit cells untouched *)
  let reg = List.find (fun c -> c.Component.cls = "register") lib8 in
  Alcotest.(check int) "register stays 1-bit" 1 reg.Component.width;
  List.iter
    (fun c ->
      if c.Component.cls = "add" || c.Component.cls = "mult" then
        Alcotest.(check int) "word cells rescaled" 8 c.Component.width)
    lib8

let test_shrink_scaling_laws () =
  let mul2 = Component.find Mosis.experiment_library ~name:"mul2" in
  let s = Component.shrink ~factor:0.5 mul2 in
  check_float "area /4" (9800. /. 4.) s.Component.area;
  check_float "delay /2" (2950. /. 2.) s.Component.delay;
  Alcotest.(check int) "width unchanged" 16 s.Component.width

let test_shrink_validates () =
  let add1 = Component.find Mosis.experiment_library ~name:"add1" in
  (match Component.shrink ~factor:0. add1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "factor 0 accepted");
  match Component.shrink ~factor:1.5 add1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "factor > 1 accepted"

let test_shrink_library_whole_node () =
  let lib = Component.shrink_library ~factor:0.5 Mosis.experiment_library in
  Alcotest.(check int) "entry count" (List.length Mosis.experiment_library)
    (List.length lib);
  (* 1-bit cells shrink too: the whole node moves *)
  let reg = List.find (fun c -> c.Component.cls = "register") lib in
  check_float "register area /4" (31. /. 4.) reg.Component.area

let test_extended_library () =
  Alcotest.(check bool) "covers select" true
    (Component.alternatives Mosis.extended_library ~cls:"select" <> []);
  Alcotest.(check bool) "covers shift" true
    (Component.alternatives Mosis.extended_library ~cls:"shift" <> []);
  Alcotest.(check bool) "covers div" true
    (Component.alternatives Mosis.extended_library ~cls:"div" <> [])

(* ------------------------------------------------------------------ *)
(* Chip *)

let test_chip_validates () =
  (match Chip.make ~name:"c" ~width:0. ~height:1. ~pins:4 ~pad_delay:1. ~pad_area:1. with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero width accepted");
  match Chip.make ~name:"c" ~width:1. ~height:1. ~pins:0 ~pad_delay:1. ~pad_area:1. with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero pins accepted"

let test_project_area () =
  check_float "table 2 die" (311.02 *. 362.20) (Chip.project_area Mosis.package_84)

let test_usable_area () =
  let full = Chip.project_area Mosis.package_84 in
  check_float "no pads" full (Chip.usable_area Mosis.package_84 ~signal_pins:0);
  check_float "40 pads" (full -. (40. *. 297.6))
    (Chip.usable_area Mosis.package_84 ~signal_pins:40);
  match Chip.usable_area Mosis.package_84 ~signal_pins:100 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "too many pads accepted"

let test_pin_budget () =
  let b = Chip.pin_budget Mosis.package_84 ~control:4 ~memory_lines:2 () in
  Alcotest.(check int) "data pins" (84 - 4 - 2 - 4 - 2) b.Chip.data;
  Alcotest.(check int) "total" 84 b.Chip.total

let test_pin_budget_exhausted () =
  match Chip.pin_budget Mosis.package_64 ~control:60 ~memory_lines:10 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "over-reservation accepted"

(* ------------------------------------------------------------------ *)
(* Memory *)

let mem ?(ports = 1) ?(access = 100.) ?(placement = Memory.On_chip 5000.) name =
  Memory.make ~name ~words:256 ~word_width:16 ~ports ~access ~placement

let test_memory_validates () =
  (match
     Memory.make ~name:"m" ~words:0 ~word_width:16 ~ports:1 ~access:10.
       ~placement:(Memory.On_chip 1.)
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "0 words accepted");
  match
    Memory.make ~name:"m" ~words:8 ~word_width:16 ~ports:1 ~access:10.
      ~placement:(Memory.Off_chip_package 0)
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "0-pin package accepted"

let test_memory_bandwidth_fast () =
  (* access fits in one 300 ns cycle: full port width per cycle *)
  let m = mem ~access:100. "m" in
  Alcotest.(check int) "16 bits/cycle" 16 (Memory.bandwidth_bits_per_cycle m ~cycle:300.)

let test_memory_bandwidth_slow () =
  (* 650 ns access needs 3 cycles: bandwidth divides *)
  let m = mem ~access:650. "m" in
  Alcotest.(check int) "16/3 = 5" 5 (Memory.bandwidth_bits_per_cycle m ~cycle:300.)

let test_memory_bandwidth_multiport () =
  let m = mem ~ports:2 "m" in
  Alcotest.(check int) "32 bits/cycle" 32 (Memory.bandwidth_bits_per_cycle m ~cycle:300.)

let test_memory_pins () =
  let on = mem "on" in
  Alcotest.(check int) "on-chip bus pins" 0 (Memory.bus_pins on);
  Alcotest.(check int) "select/rw" 2 (Memory.select_rw_lines on);
  let off = mem ~placement:(Memory.Off_chip_package 28) "off" in
  Alcotest.(check int) "off-chip bus pins" 16 (Memory.bus_pins off)

(* ------------------------------------------------------------------ *)
(* Clocking *)

let test_clocking () =
  let c = Clocking.make ~main:300. ~datapath_ratio:10 ~transfer_ratio:1 in
  check_float "dp" 3000. (Clocking.datapath_cycle c);
  check_float "tr" 300. (Clocking.transfer_cycle c);
  Alcotest.(check int) "dp->main" 60 (Clocking.main_cycles_of_datapath c 6);
  Alcotest.(check int) "tr->main" 6 (Clocking.main_cycles_of_transfer c 6)

let test_clocking_validates () =
  (match Clocking.make ~main:0. ~datapath_ratio:1 ~transfer_ratio:1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "main 0 accepted");
  match Clocking.make ~main:300. ~datapath_ratio:0 ~transfer_ratio:1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "ratio 0 accepted"

(* ------------------------------------------------------------------ *)
(* Pla *)

let test_pla_area_zero_terms () =
  check_float "empty" 0. (Pla.area { Pla.inputs = 4; outputs = 4; product_terms = 0 })

let test_pla_area_grows () =
  let a1 = Pla.area { Pla.inputs = 4; outputs = 8; product_terms = 10 } in
  let a2 = Pla.area { Pla.inputs = 4; outputs = 8; product_terms = 20 } in
  let a3 = Pla.area { Pla.inputs = 8; outputs = 8; product_terms = 10 } in
  Alcotest.(check bool) "terms grow area" true (a2 > a1);
  Alcotest.(check bool) "inputs grow area" true (a3 > a1)

let test_pla_delay_grows () =
  let d1 = Pla.delay { Pla.inputs = 4; outputs = 8; product_terms = 10 } in
  let d2 = Pla.delay { Pla.inputs = 12; outputs = 8; product_terms = 40 } in
  Alcotest.(check bool) "positive" true (d1 > 0.);
  Alcotest.(check bool) "grows" true (d2 > d1)

let test_pla_rejects_negative () =
  match Pla.area { Pla.inputs = -1; outputs = 0; product_terms = 1 } with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative shape accepted"

let test_controller_shape_small () =
  let s = Pla.controller_shape ~states:8 ~status_inputs:2 ~control_outputs:20 in
  Alcotest.(check int) "inputs = 3 state bits + 2" 5 s.Pla.inputs;
  Alcotest.(check int) "outputs = 3 + 20" 23 s.Pla.outputs;
  Alcotest.(check int) "terms" 11 s.Pla.product_terms

let test_controller_shape_saturates () =
  (* long schedules switch to counter-based decode: term growth flattens *)
  let s100 = Pla.controller_shape ~states:100 ~status_inputs:2 ~control_outputs:8 in
  let s400 = Pla.controller_shape ~states:400 ~status_inputs:2 ~control_outputs:8 in
  Alcotest.(check bool) "flattened" true
    (s400.Pla.product_terms - s100.Pla.product_terms < 100)

let test_controller_shape_validates () =
  match Pla.controller_shape ~states:0 ~status_inputs:1 ~control_outputs:1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "0 states accepted"

(* ------------------------------------------------------------------ *)
(* Wiring *)

let test_routing_area_triplet () =
  let t = Wiring.routing_area ~active_area:10000. ~nets:100 in
  Alcotest.(check bool) "ordered" true
    Chop_util.Triplet.(t.low < t.likely && t.likely < t.high);
  Alcotest.(check bool) "reasonable fraction" true
    Chop_util.Triplet.(t.likely > 1000. && t.likely < 6000.)

let test_routing_area_grows_with_nets () =
  let a = Wiring.routing_area ~active_area:10000. ~nets:10 in
  let b = Wiring.routing_area ~active_area:10000. ~nets:1000 in
  Alcotest.(check bool) "more nets, more routing" true
    Chop_util.Triplet.(b.likely > a.likely)

let test_wire_delay () =
  check_float "zero area" 0. (Wiring.wire_delay ~total_area:0.);
  let d = Wiring.wire_delay ~total_area:100000. in
  Alcotest.(check bool) "single-digit ns" true (d > 1. && d < 20.)

let test_mux_tree_delay () =
  check_float "fanin 1" 0. (Wiring.mux_tree_delay ~fanin:1);
  check_float "fanin 2 = 1 level" 4. (Wiring.mux_tree_delay ~fanin:2);
  check_float "fanin 8 = 3 levels" 12. (Wiring.mux_tree_delay ~fanin:8);
  check_float "fanin 9 = 4 levels" 16. (Wiring.mux_tree_delay ~fanin:9)

(* ------------------------------------------------------------------ *)
(* Cost *)

let test_cost_yield_bounds () =
  let m = Cost.default_3u in
  let y_small = Cost.yield_fraction m ~die_area:1000. in
  let y_big = Cost.yield_fraction m ~die_area:500_000. in
  Alcotest.(check bool) "yield in (0,1]" true (y_small > 0. && y_small <= 1.);
  Alcotest.(check bool) "bigger dies yield worse" true (y_big < y_small)

let test_cost_die_monotone () =
  let m = Cost.default_3u in
  let small = Cost.die_cost m ~die_area:50_000. in
  let big = Cost.die_cost m ~die_area:200_000. in
  Alcotest.(check bool) "bigger dies cost more" true (big > small);
  Alcotest.(check bool) "positive" true (small > 0.)

let test_cost_chip_and_set () =
  let m = Cost.default_3u in
  let c64 = Cost.chip_cost m Mosis.package_64 in
  let c84 = Cost.chip_cost m Mosis.package_84 in
  (* same die, more pins: strictly more expensive *)
  Alcotest.(check bool) "84 pins cost more" true (c84 > c64);
  check_float "set = sum" (c64 +. c84)
    (Cost.chip_set_cost m [ Mosis.package_64; Mosis.package_84 ]);
  Alcotest.(check bool) "plausible dollars" true (c84 > 5. && c84 < 200.)

let test_cost_validates () =
  match Cost.die_cost Cost.default_3u ~die_area:0. with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero die accepted"

(* ------------------------------------------------------------------ *)
(* Mosis (Tables 1 and 2) *)

let test_table1_values () =
  let check name area delay =
    let c = Component.find Mosis.experiment_library ~name in
    check_float (name ^ " area") area c.Component.area;
    check_float (name ^ " delay") delay c.Component.delay
  in
  check "add1" 4200. 34.;
  check "add2" 2880. 53.;
  check "add3" 1200. 151.;
  check "mul1" 49000. 375.;
  check "mul2" 9800. 2950.;
  check "mul3" 7100. 7370.;
  check "register" 31. 5.;
  check "mux" 18. 4.

let test_table2_values () =
  Alcotest.(check int) "64 pins" 64 Mosis.package_64.Chip.pins;
  Alcotest.(check int) "84 pins" 84 Mosis.package_84.Chip.pins;
  check_float "pad delay" 25. Mosis.package_84.Chip.pad_delay;
  check_float "pad area" 297.6 Mosis.package_84.Chip.pad_area;
  check_float "main clock" 300. Mosis.main_clock;
  Alcotest.(check int) "two packages" 2 (List.length Mosis.packages)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "chop_tech"
    [
      ( "component",
        [
          tc "make validates" `Quick test_component_make_validates;
          tc "default power" `Quick test_component_default_power;
          tc "alternatives sorted" `Quick test_alternatives_sorted_by_speed;
          tc "classes" `Quick test_classes;
          tc "covers" `Quick test_covers;
          tc "nine module sets" `Quick test_module_sets_nine;
          tc "uncovered gives none" `Quick test_module_sets_uncovered_empty;
          tc "find" `Quick test_find;
          tc "rescale adder" `Quick test_rescale_adder_linear;
          tc "rescale multiplier" `Quick test_rescale_multiplier_quadratic;
          tc "rescale identity/errors" `Quick test_rescale_identity_and_errors;
          tc "rescale library" `Quick test_rescale_library;
          tc "extended library" `Quick test_extended_library;
          tc "shrink scaling laws" `Quick test_shrink_scaling_laws;
          tc "shrink validates" `Quick test_shrink_validates;
          tc "shrink library" `Quick test_shrink_library_whole_node;
        ] );
      ( "chip",
        [
          tc "validates" `Quick test_chip_validates;
          tc "project area" `Quick test_project_area;
          tc "usable area" `Quick test_usable_area;
          tc "pin budget" `Quick test_pin_budget;
          tc "pin budget exhausted" `Quick test_pin_budget_exhausted;
        ] );
      ( "memory",
        [
          tc "validates" `Quick test_memory_validates;
          tc "bandwidth fast" `Quick test_memory_bandwidth_fast;
          tc "bandwidth slow" `Quick test_memory_bandwidth_slow;
          tc "bandwidth multiport" `Quick test_memory_bandwidth_multiport;
          tc "pins" `Quick test_memory_pins;
        ] );
      ( "clocking",
        [
          tc "cycles" `Quick test_clocking;
          tc "validates" `Quick test_clocking_validates;
        ] );
      ( "pla",
        [
          tc "zero terms" `Quick test_pla_area_zero_terms;
          tc "area grows" `Quick test_pla_area_grows;
          tc "delay grows" `Quick test_pla_delay_grows;
          tc "rejects negative" `Quick test_pla_rejects_negative;
          tc "controller shape" `Quick test_controller_shape_small;
          tc "controller saturates" `Quick test_controller_shape_saturates;
          tc "controller validates" `Quick test_controller_shape_validates;
        ] );
      ( "wiring",
        [
          tc "routing triplet" `Quick test_routing_area_triplet;
          tc "routing vs nets" `Quick test_routing_area_grows_with_nets;
          tc "wire delay" `Quick test_wire_delay;
          tc "mux tree delay" `Quick test_mux_tree_delay;
        ] );
      ( "cost",
        [
          tc "yield bounds" `Quick test_cost_yield_bounds;
          tc "die monotone" `Quick test_cost_die_monotone;
          tc "chip + set" `Quick test_cost_chip_and_set;
          tc "validates" `Quick test_cost_validates;
        ] );
      ( "mosis",
        [
          tc "Table 1" `Quick test_table1_values;
          tc "Table 2" `Quick test_table2_values;
        ] );
    ]
