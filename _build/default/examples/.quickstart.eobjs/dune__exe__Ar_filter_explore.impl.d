examples/ar_filter_explore.ml: Chop Chop_util Format List Printf Texttable
