examples/kl_vs_chop.ml: Chop Chop_bad Chop_baseline Chop_dfg Chop_tech Chop_util List Printf String Texttable
