examples/quickstart.mli:
