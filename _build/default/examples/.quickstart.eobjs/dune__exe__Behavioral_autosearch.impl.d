examples/behavioral_autosearch.ml: Chop Chop_bad Chop_baseline Chop_dfg Chop_tech Format List Printf
