examples/figure2_system.mli:
