examples/behavioral_autosearch.mli:
