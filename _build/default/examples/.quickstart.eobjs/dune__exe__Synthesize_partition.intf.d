examples/synthesize_partition.mli:
