examples/advisor_session.ml: Chop Chop_bad Chop_tech List Printf
