examples/synthesize_partition.ml: Chop Chop_bad Chop_dfg Chop_rtl Chop_sched Chop_tech Chop_util Format List Printf
