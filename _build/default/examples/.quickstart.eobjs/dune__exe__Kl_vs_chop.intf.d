examples/kl_vs_chop.mli:
