examples/ewf_multichip.mli:
