examples/ar_filter_explore.mli:
