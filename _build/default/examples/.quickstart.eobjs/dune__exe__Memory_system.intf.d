examples/memory_system.mli:
