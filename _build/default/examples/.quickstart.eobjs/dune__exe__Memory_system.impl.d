examples/memory_system.ml: Chop Chop_bad Chop_dfg Chop_tech Chop_util List String Texttable
