examples/figure2_system.ml: Chop Chop_bad Chop_dfg Chop_tech Format List Printf Stdlib
