examples/advisor_session.mli:
