examples/ewf_multichip.ml: Chop Chop_bad Chop_dfg Chop_tech Chop_util List Printf String Texttable
