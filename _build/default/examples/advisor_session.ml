(* A system-level advising session (paper, sections 2.7 and 4): the
   designer iterates partitioning modifications and CHOP answers each
   what-if in real time.

   Run with:  dune exec examples/advisor_session.exe *)

let step n title judgement =
  Printf.printf "step %d — %s\n  -> %s\n\n" n title
    judgement.Chop.Advisor.advice

let () =
  print_endline "Interactive advising session on the AR lattice filter\n";

  (* start: everything on one chip *)
  let spec0 = Chop.Rig.experiment1 ~partitions:1 () in
  step 1 "single 84-pin chip" (Chop.Advisor.what_if spec0);

  (* the designer wants 2x the performance: repartition onto two chips *)
  let spec1 = Chop.Rig.experiment1 ~partitions:2 () in
  step 2 "split into two partitions on two chips" (Chop.Advisor.what_if spec1);

  (* what if the cheaper 64-pin package is used instead? *)
  let spec2 =
    List.fold_left
      (fun spec chip ->
        Chop.Advisor.swap_package spec ~chip Chop_tech.Mosis.package_64)
      spec1 [ "chip1"; "chip2" ]
  in
  step 3 "downgrade both chips to the 64-pin package"
    (Chop.Advisor.what_if spec2);

  (* tighten the constraints until the two-chip design breaks *)
  let spec3 =
    Chop.Advisor.set_constraints spec1
      ~criteria:(Chop_bad.Feasibility.criteria ~perf:8000. ~delay:8000. ())
  in
  step 4 "tighten performance and delay to 8 000 ns"
    (Chop.Advisor.what_if spec3);

  (* recover by repartitioning onto three chips *)
  let spec4 =
    Chop.Advisor.set_constraints
      (Chop.Rig.experiment2 ~partitions:3 ())
      ~criteria:(Chop_bad.Feasibility.criteria ~perf:8000. ~delay:16000. ())
  in
  step 5 "three chips, multi-cycle style, delay relaxed to 16 000 ns"
    (Chop.Advisor.what_if spec4);

  (* summary comparison of the two main alternatives *)
  print_endline "comparison of step 1 vs step 2:";
  print_endline ("  " ^ Chop.Advisor.compare_specs spec0 spec1);

  (* the advisor's bird's-eye view: where does the 2-chip design live in
     the performance x pins plane? *)
  print_endline "\nfeasibility map of the 2-chip design (# feasible, . not):";
  let grid =
    Chop.Sensitivity.performance_pins_grid spec1
      ~perf_values:[ 30000.; 15000.; 9000.; 6000. ]
      ~pin_values:[ 84; 64; 40; 24 ]
  in
  print_string (Chop.Sensitivity.render_grid grid)
