(* Closing the loop: write a behavioral program in the input language
   (assignments, bounded loops, if/else — the "added control constructs"),
   compile it to a data-flow graph, and let the automatic partitioning
   search find a feasible multi-chip implementation.

   Run with:  dune exec examples/behavioral_autosearch.exe *)

open Chop_dfg.Behavior

(* A conditional IIR-ish smoother over 6 unrolled iterations:
     for 6 times:
       p = x * a
       q = acc * b
       t = p + q
       acc = if t < limit then t else t - decay *)
let program =
  {
    prog_name = "smoother";
    width = 16;
    inputs = [ "x"; "acc0"; "limit" ];
    outputs = [ "acc" ];
    body =
      [
        Assign ("acc", Var "acc0");
        For
          ( 6,
            [
              Assign ("p", Bin (Mul, Var "x", Const "a"));
              Assign ("q", Bin (Mul, Var "acc", Const "b"));
              Assign ("t", Bin (Add, Var "p", Var "q"));
              If
                ( Bin (Less, Var "t", Var "limit"),
                  [ Assign ("acc", Var "t") ],
                  [ Assign ("acc", Bin (Sub, Var "t", Const "decay")) ] );
            ] );
      ];
  }

let () =
  let graph = compile program in
  Format.printf "compiled %d statements to:@.%a@." (stmt_count program)
    Chop_dfg.Graph.pp graph;

  let candidates =
    Chop_baseline.Autosearch.run ~max_partitions:3
      ~strategies:
        [ Chop_baseline.Autopart.Levels; Chop_baseline.Autopart.Min_cut 1 ]
      ~library:Chop_tech.Mosis.extended_library
      ~graph ~package:Chop_tech.Mosis.package_84
      ~clocks:
        (Chop_tech.Clocking.make ~main:300. ~datapath_ratio:1 ~transfer_ratio:1)
      ~style:(Chop_tech.Style.both Chop_tech.Style.Multi_cycle)
      ~criteria:(Chop_bad.Feasibility.criteria ~perf:15000. ~delay:15000. ())
      ()
  in
  print_endline "automatic partitioning search, ranked:";
  List.iter
    (fun c -> Printf.printf "  %s\n" (Chop_baseline.Autosearch.describe c))
    candidates;
  match Chop_baseline.Autosearch.best candidates with
  | None -> print_endline "\nno feasible partitioning found"
  | Some c ->
      Printf.printf "\nwinner: %d partition(s) via %s\n" c.Chop_baseline.Autosearch.partitions
        (Chop_baseline.Autopart.strategy_name c.Chop_baseline.Autosearch.strategy);
      (match c.Chop_baseline.Autosearch.judgement.Chop.Advisor.best with
      | Some s ->
          print_newline ();
          print_string (Chop.Report.guideline c.Chop_baseline.Autosearch.spec s)
      | None -> ())
