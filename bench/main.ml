(* Reproduction harness: regenerates every table and figure of the paper's
   evaluation section (Tables 3-6, Figures 7-8), plus ablation benches for
   the design choices called out in DESIGN.md and Bechamel micro-benchmarks
   of the two search heuristics.

   Run with:  dune exec bench/main.exe
   CPU times are wall-clock seconds on this host (the paper reports a
   Solbourne Series 5e/900); compare shapes and ratios, not absolutes. *)

open Chop_util

let section title =
  Printf.printf "\n%s\n%s\n\n" title (String.make (String.length title) '=')

let heuristics = [ ("E", Chop.Explore.Enumeration); ("I", Chop.Explore.Iterative) ]

(* Engine-based exploration with the prediction cache off, so every timed
   run measures honest recomputation; with_engine joins the worker domains
   after each run, so the hundreds of bench explorations never accumulate
   live domains.  [pre_prune] defaults to the engine default (on); the
   paper-fidelity sections that reproduce the unpruned design space pass
   [~pre_prune:false] explicitly. *)
let explore ?(heuristic = Chop.Explore.Iterative) ?(keep_all = false)
    ?(pre_prune = true) ?(jobs = 1) spec =
  Chop.Explore.with_engine
    (Chop.Explore.Config.make ~heuristic ~keep_all ~pre_prune ~jobs
       ~cache:Chop.Explore.Config.Off ())
    spec Chop.Explore.Engine.run

let bad_predictions spec =
  Chop.Explore.with_engine
    (Chop.Explore.Config.make ~cache:Chop.Explore.Config.Off ())
    spec Chop.Explore.Engine.predictions

(* ------------------------------------------------------------------ *)
(* Inputs: Tables 1 and 2 *)

let print_inputs () =
  section "Inputs — Table 1 (3u design library) and Table 2 (MOSIS packages)";
  let t1 =
    Texttable.create ~title:"Table 1: library used in the experiments"
      [
        ("Module", Texttable.Left); ("Class", Texttable.Left);
        ("Bits", Texttable.Right); ("Area mil^2", Texttable.Right);
        ("Delay ns", Texttable.Right);
      ]
  in
  List.iter
    (fun c ->
      Texttable.add_row t1
        [
          c.Chop_tech.Component.cname; c.Chop_tech.Component.cls;
          string_of_int c.Chop_tech.Component.width;
          Printf.sprintf "%.0f" c.Chop_tech.Component.area;
          Printf.sprintf "%.0f" c.Chop_tech.Component.delay;
        ])
    Chop_tech.Mosis.experiment_library;
  Texttable.print t1;
  print_newline ();
  let t2 =
    Texttable.create ~title:"Table 2: MOSIS standard chip packages"
      [
        ("No", Texttable.Right); ("Width mil", Texttable.Right);
        ("Height mil", Texttable.Right); ("Pins", Texttable.Right);
        ("Pad delay ns", Texttable.Right); ("Pad area mil^2", Texttable.Right);
      ]
  in
  List.iteri
    (fun i c ->
      Texttable.add_row t2
        [
          string_of_int (i + 1);
          Printf.sprintf "%.2f" c.Chop_tech.Chip.width;
          Printf.sprintf "%.2f" c.Chop_tech.Chip.height;
          string_of_int c.Chop_tech.Chip.pins;
          Printf.sprintf "%.1f" c.Chop_tech.Chip.pad_delay;
          Printf.sprintf "%.2f" c.Chop_tech.Chip.pad_area;
        ])
    Chop_tech.Mosis.packages;
  Texttable.print t2

(* ------------------------------------------------------------------ *)
(* Tables 3 and 5: statistics on the results from BAD *)

let bad_statistics ~title spec_of =
  let t =
    Texttable.create ~title
      [
        ("Partition Count", Texttable.Right);
        ("Total predictions", Texttable.Right);
        ("Feasible in isolation", Texttable.Right);
        ("Kept after pruning", Texttable.Right);
      ]
  in
  List.iter
    (fun k ->
      let spec = spec_of k in
      let _, stats = bad_predictions spec in
      let total = Listx.sum_by (fun b -> b.Chop.Explore.total_predictions) stats in
      let feas = Listx.sum_by (fun b -> b.Chop.Explore.feasible_predictions) stats in
      let kept = Listx.sum_by (fun b -> b.Chop.Explore.kept) stats in
      Texttable.add_row t
        [ string_of_int k; string_of_int total; string_of_int feas;
          string_of_int kept ])
    [ 1; 2; 3 ];
  Texttable.print t;
  print_endline
    "(the paper's \"Number of feasible predictions\" corresponds to the kept\n\
     column: BAD discards infeasible and inferior predictions immediately)"

(* ------------------------------------------------------------------ *)
(* Tables 4 and 6: search results *)

let search_results ~title ~rows spec_of =
  let t =
    Texttable.create ~title
      [
        ("Partition Count", Texttable.Right); ("Package", Texttable.Center);
        ("H", Texttable.Center); ("CPU Time", Texttable.Right);
        ("Imp. Trials", Texttable.Right); ("Feasible", Texttable.Right);
        ("Initiation Interval", Texttable.Right); ("Delay", Texttable.Right);
        ("Clock Cycle ns", Texttable.Right);
      ]
  in
  List.iter
    (fun (k, pkg_name, package) ->
      List.iter
        (fun (hname, h) ->
          let spec = spec_of k package in
          let report = explore ~heuristic:h spec in
          let st = report.Chop.Explore.outcome.Chop.Search.stats in
          let feas = report.Chop.Explore.outcome.Chop.Search.feasible in
          let designs = Listx.take 2 feas in
          (match designs with
          | [] ->
              Texttable.add_row t
                [
                  string_of_int k; pkg_name; hname;
                  Printf.sprintf "%.3f" st.Chop.Search.cpu_seconds;
                  string_of_int st.Chop.Search.implementation_trials;
                  "0"; "-"; "-"; "-";
                ]
          | first :: rest ->
              Texttable.add_row t
                [
                  string_of_int k; pkg_name; hname;
                  Printf.sprintf "%.3f" st.Chop.Search.cpu_seconds;
                  string_of_int st.Chop.Search.implementation_trials;
                  string_of_int (List.length feas);
                  string_of_int first.Chop.Integration.ii_main;
                  string_of_int first.Chop.Integration.delay_cycles;
                  Printf.sprintf "%.0f" first.Chop.Integration.clock;
                ];
              List.iter
                (fun s ->
                  Texttable.add_row t
                    [
                      ""; ""; ""; ""; ""; "";
                      string_of_int s.Chop.Integration.ii_main;
                      string_of_int s.Chop.Integration.delay_cycles;
                      Printf.sprintf "%.0f" s.Chop.Integration.clock;
                    ])
                rest);
          ())
        heuristics;
      Texttable.add_separator t)
    rows;
  Texttable.print t

(* ------------------------------------------------------------------ *)
(* Figures 7 and 8: the explored design space under keep-all *)

let ascii_scatter ~title points =
  Printf.printf "%s\n" title;
  print_string
    (Scatter.render ~x_label:"system delay (ns)"
       ~y_label:"performance, initiation x clock (ns)" points)

let design_space ~title ~partition_counts spec_of =
  section title;
  let all_points = ref [] in
  let total = ref 0 and cpu = ref 0. in
  let uniq = ref 0 in
  List.iter
    (fun k ->
      let spec = spec_of k in
      let t0 = Sys.time () in
      (* pre-pruning off: these figures reproduce the paper's *unpruned*
         design-space dumps *)
      let report =
        explore ~heuristic:Chop.Explore.Enumeration ~keep_all:true
          ~pre_prune:false spec
      in
      cpu := !cpu +. (Sys.time () -. t0);
      let explored = report.Chop.Explore.outcome.Chop.Search.explored in
      total := !total + List.length explored;
      uniq := !uniq + Chop.Explore.unique_designs explored;
      List.iter
        (fun s ->
          if s.Chop.Integration.chip_reports <> [] then
            all_points :=
              (Triplet.mean s.Chop.Integration.delay, s.Chop.Integration.perf_ns)
              :: !all_points)
        explored)
    partition_counts;
  Printf.printf
    "designs encountered without pruning: %d total (%d unique), CPU %.2f s\n\n"
    !total !uniq !cpu;
  ascii_scatter ~title:"design-space scatter (each cell counts designs):"
    !all_points

(* ------------------------------------------------------------------ *)
(* Ablations *)

let ablation_pruning () =
  section "Ablation: two-level pruning (the paper's Figure 7 CPU argument)";
  let spec = Chop.Rig.experiment1 ~partitions:2 () in
  (* pre-pruning off on both sides: this ablation isolates the paper's
     own two-level pruning, not this implementation's dominance pass *)
  let timed keep_all =
    let t0 = Sys.time () in
    let report =
      explore ~heuristic:Chop.Explore.Enumeration ~keep_all ~pre_prune:false
        spec
    in
    let dt = Sys.time () -. t0 in
    (dt, report.Chop.Explore.outcome.Chop.Search.stats.Chop.Search.integrations)
  in
  let t_pruned, n_pruned = timed false in
  let t_all, n_all = timed true in
  Printf.printf
    "pruned search:   %d integrations in %.3f s\nkeep-all search: %d \
     integrations in %.3f s\npruning speedup: %.1fx fewer integrations\n"
    n_pruned t_pruned n_all t_all
    (float_of_int n_all /. float_of_int (max 1 n_pruned))

let ablation_testability () =
  section "Ablation: testability overhead (paper section 5, future work)";
  let t =
    Texttable.create
      [
        ("Scan overhead", Texttable.Right); ("Feasible designs", Texttable.Right);
        ("Best II", Texttable.Right);
      ]
  in
  List.iter
    (fun overhead ->
      let params = { Chop.Spec.default_params with Chop.Spec.testability_overhead = overhead } in
      let spec = Chop.Rig.experiment1 ~params ~partitions:2 () in
      let report = explore spec in
      let feas = report.Chop.Explore.outcome.Chop.Search.feasible in
      Texttable.add_row t
        [
          Printf.sprintf "%.0f%%" (overhead *. 100.);
          string_of_int (List.length feas);
          (match feas with
          | [] -> "-"
          | s :: _ -> string_of_int s.Chop.Integration.ii_main);
        ])
    [ 0.0; 0.10; 0.20; 0.35 ];
  Texttable.print t;
  print_endline "(scan-path area squeezes the feasible set, as anticipated)"

let ablation_power () =
  section "Ablation: power-consumption constraints (paper section 5)";
  let t =
    Texttable.create
      [
        ("Budget mW/chip", Texttable.Right); ("Feasible designs", Texttable.Right);
      ]
  in
  List.iter
    (fun budget ->
      let criteria =
        Chop_bad.Feasibility.criteria ?power_budget:budget ~perf:30000.
          ~delay:30000. ()
      in
      let graph = Chop_dfg.Benchmarks.ar_lattice_filter () in
      let partitioning = Chop_dfg.Partition.by_levels graph ~k:2 in
      let spec =
        Chop.Rig.custom ~graph ~partitioning ~package:Chop_tech.Mosis.package_84
          ~clocks:
            (Chop_tech.Clocking.make ~main:300. ~datapath_ratio:10
               ~transfer_ratio:1)
          ~style:(Chop_tech.Style.both Chop_tech.Style.Single_cycle)
          ~criteria ()
      in
      let report = explore ~heuristic:Chop.Explore.Enumeration spec in
      Texttable.add_row t
        [
          (match budget with None -> "unconstrained" | Some b -> Printf.sprintf "%.0f" b);
          string_of_int
            (List.length report.Chop.Explore.outcome.Chop.Search.feasible);
        ])
    [ None; Some 120.; Some 60.; Some 30. ];
  Texttable.print t

let ablation_packing () =
  section
    "Ablation: packing partitions onto fewer chips (Figure 2 allows several \
     partitions per chip)";
  let t =
    Texttable.create
      [
        ("Chips", Texttable.Right); ("Feasible", Texttable.Right);
        ("Best II", Texttable.Right); ("Chip-set cost $", Texttable.Right);
      ]
  in
  let spec3 = Chop.Rig.experiment1 ~partitions:3 () in
  let m = Chop_tech.Cost.default_3u in
  List.iter
    (fun chips ->
      let spec =
        if chips = 3 then spec3 else Chop_baseline.Packing.pack spec3 ~chips
      in
      let cost =
        Chop_tech.Cost.chip_set_cost m
          (List.map (fun c -> c.Chop.Spec.package) spec.Chop.Spec.chips)
      in
      let feas =
        (explore spec).Chop.Explore.outcome
          .Chop.Search.feasible
      in
      Texttable.add_row t
        [
          string_of_int chips;
          string_of_int (List.length feas);
          (match feas with
          | [] -> "-"
          | s :: _ -> string_of_int s.Chop.Integration.ii_main);
          Printf.sprintf "%.0f" cost;
        ])
    [ 3; 2; 1 ];
  Texttable.print t;
  print_endline
    "(the same three partitions packed onto two chips keep the II-30 rate\n\
     at two thirds of the cost; one chip cannot hold them)"

let ablation_transformations () =
  section
    "Ablation: high-level transformations before partitioning (the paper's \
     section 4 proposes CHOP to study exactly this)";
  (* a serially-accumulated 8-tap filter: the naive behavioral description
     has an 8-deep add chain *)
  let serial_program =
    {
      Chop_dfg.Behavior.prog_name = "serial_fir8";
      width = 16;
      inputs = [ "x0"; "x1"; "x2"; "x3"; "x4"; "x5"; "x6"; "x7" ];
      outputs = [ "acc" ];
      body =
        Chop_dfg.Behavior.Assign
          ( "acc",
            Chop_dfg.Behavior.Bin
              ( Chop_dfg.Behavior.Mul,
                Chop_dfg.Behavior.Var "x0",
                Chop_dfg.Behavior.Const "h0" ) )
        :: List.map
             (fun i ->
               Chop_dfg.Behavior.Assign
                 ( "acc",
                   Chop_dfg.Behavior.Bin
                     ( Chop_dfg.Behavior.Add,
                       Chop_dfg.Behavior.Var "acc",
                       Chop_dfg.Behavior.Bin
                         ( Chop_dfg.Behavior.Mul,
                           Chop_dfg.Behavior.Var (Printf.sprintf "x%d" i),
                           Chop_dfg.Behavior.Const (Printf.sprintf "h%d" i) ) ) ))
             (Listx.range 1 7);
    }
  in
  let naive = Chop_dfg.Behavior.compile serial_program in
  let balanced = Chop_dfg.Transform.balance_associative naive in
  let t =
    Texttable.create
      [
        ("Form", Texttable.Left); ("Critical path", Texttable.Right);
        ("Feasible", Texttable.Right); ("Best II", Texttable.Right);
        ("Best delay", Texttable.Right);
      ]
  in
  List.iter
    (fun (name, graph) ->
      let partitioning = Chop_dfg.Partition.whole graph in
      let spec =
        Chop.Rig.custom ~graph ~partitioning
          ~package:Chop_tech.Mosis.package_84
          ~clocks:
            (Chop_tech.Clocking.make ~main:300. ~datapath_ratio:1
               ~transfer_ratio:1)
          ~style:(Chop_tech.Style.both Chop_tech.Style.Multi_cycle)
          ~criteria:(Chop_bad.Feasibility.criteria ~perf:8000. ~delay:8000. ())
          ()
      in
      let feas =
        (explore spec).Chop.Explore.outcome
          .Chop.Search.feasible
      in
      Texttable.add_row t
        [
          name;
          string_of_int (Chop_dfg.Analysis.critical_path graph);
          string_of_int (List.length feas);
          (match feas with
          | [] -> "-"
          | s :: _ -> string_of_int s.Chop.Integration.ii_main);
          (match feas with
          | [] -> "-"
          | s :: _ -> string_of_int s.Chop.Integration.delay_cycles);
        ])
    [ ("serial (as written)", naive); ("balanced (tree-height reduced)", balanced) ];
  Texttable.print t;
  print_endline
    "(the same behavior, re-associated before partitioning, halves the\n\
     dependence depth and widens the feasible set — the transformation /\n\
     partitioning interaction section 4 proposes CHOP to study)"

let ablation_chaining () =
  section "Ablation: operator chaining inside the long single-cycle step";
  let t =
    Texttable.create
      [
        ("Chaining", Texttable.Left); ("Predictions", Texttable.Right);
        ("Kept", Texttable.Right); ("Best partition latency (dp)", Texttable.Right);
      ]
  in
  let g = Chop_dfg.Benchmarks.ar_lattice_filter () in
  let clocks =
    Chop_tech.Clocking.make ~main:300. ~datapath_ratio:10 ~transfer_ratio:1
  in
  List.iter
    (fun (name, chaining) ->
      let cfg =
        Chop_bad.Predictor.config ~chaining
          ~library:Chop_tech.Mosis.experiment_library ~clocks
          ~style:(Chop_tech.Style.both Chop_tech.Style.Single_cycle) ()
      in
      let preds = Chop_bad.Predictor.predict cfg ~label:"P1" g in
      let crit = Chop_bad.Feasibility.criteria ~perf:30000. ~delay:30000. () in
      let chip_area =
        Chop_tech.Chip.usable_area Chop_tech.Mosis.package_84 ~signal_pins:42
      in
      let kept = Chop_bad.Predictor.prune cfg ~criteria:crit ~chip_area preds in
      let best =
        List.fold_left
          (fun acc (p : Chop_bad.Prediction.t) ->
            min acc p.Chop_bad.Prediction.timing.Chop_bad.Prediction.latency_dp)
          max_int preds
      in
      Texttable.add_row t
        [
          name; string_of_int (List.length preds);
          string_of_int (List.length kept); string_of_int best;
        ])
    [ ("off", false); ("on", true) ];
  Texttable.print t;
  print_endline
    "(chaining packs dependent multiply/add pairs into one 3 000 ns step:\n\
     the same hardware reaches roughly half the schedule length)"

let ablation_cost () =
  section "Ablation: manufacturing cost vs performance (section 2.7)";
  let t =
    Texttable.create
      [
        ("Chips", Texttable.Right); ("Best II", Texttable.Right);
        ("Perf ns", Texttable.Right); ("Chip-set cost $", Texttable.Right);
        ("$ per 1/ns", Texttable.Right);
      ]
  in
  let m = Chop_tech.Cost.default_3u in
  List.iter
    (fun k ->
      let spec = Chop.Rig.experiment1 ~partitions:k () in
      let cost =
        Chop_tech.Cost.chip_set_cost m
          (List.map (fun c -> c.Chop.Spec.package) spec.Chop.Spec.chips)
      in
      match
        (explore spec).Chop.Explore.outcome
          .Chop.Search.feasible
      with
      | [] ->
          Texttable.add_row t
            [ string_of_int k; "-"; "-"; Printf.sprintf "%.0f" cost; "-" ]
      | s :: _ ->
          Texttable.add_row t
            [
              string_of_int k;
              string_of_int s.Chop.Integration.ii_main;
              Printf.sprintf "%.0f" s.Chop.Integration.perf_ns;
              Printf.sprintf "%.0f" cost;
              Printf.sprintf "%.0f" (cost *. s.Chop.Integration.perf_ns);
            ])
    [ 1; 2; 3 ];
  Texttable.print t;
  print_endline
    "(the second chip buys its 2x throughput almost linearly in cost; the\n\
     third buys nothing — CHOP's feasibility feedback is what exposes that\n\
     before any silicon is committed)"

let ablation_technology_scaling () =
  section
    "Ablation: process shrink — how the partitioning pressure of 1991 \
     melts at finer nodes";
  let t =
    Texttable.create
      [
        ("Node", Texttable.Left); ("1 chip", Texttable.Center);
        ("2 chips", Texttable.Center);
        ("Best II (fewest chips)", Texttable.Right);
      ]
  in
  List.iter
    (fun (node, factor) ->
      let library =
        if factor = 1.0 then Chop_tech.Mosis.experiment_library
        else Chop_tech.Component.shrink_library ~factor Chop_tech.Mosis.experiment_library
      in
      let feas k =
        let graph = Chop_dfg.Benchmarks.ar_lattice_filter () in
        let partitioning =
          if k = 1 then Chop_dfg.Partition.whole graph
          else Chop_dfg.Partition.by_levels graph ~k
        in
        (* the clock scales with the node; the market's constraint does not *)
        let spec =
          Chop.Rig.custom ~library ~graph ~partitioning
            ~package:Chop_tech.Mosis.package_84
            ~clocks:
              (Chop_tech.Clocking.make ~main:(300. *. factor) ~datapath_ratio:10
                 ~transfer_ratio:1)
            ~style:(Chop_tech.Style.both Chop_tech.Style.Single_cycle)
            ~criteria:
              (Chop_bad.Feasibility.criteria ~perf:9000. ~delay:30000. ())
            ()
        in
        (explore spec).Chop.Explore.outcome
          .Chop.Search.feasible
      in
      let f1 = feas 1 and f2 = feas 2 in
      let best =
        match (f1, f2) with
        | s :: _, _ -> Printf.sprintf "%d (1 chip)" s.Chop.Integration.ii_main
        | [], s :: _ -> Printf.sprintf "%d (2 chips)" s.Chop.Integration.ii_main
        | [], [] -> "-"
      in
      Texttable.add_row t
        [
          node;
          (if f1 <> [] then "feasible" else "no");
          (if f2 <> [] then "feasible" else "no");
          best;
        ])
    [ ("3.0 um", 1.0); ("2.0 um", 0.67); ("1.2 um", 0.4) ];
  Texttable.print t;
  print_endline
    "(a 9 000 ns throughput target that demands two 3 um chips fits one\n\
     chip after a shrink — the partitioning problem itself is\n\
     technology-relative, which is why behavioral multi-chip partitioning\n\
     faded as processes scaled)"

let ablation_pin_sensitivity () =
  section
    "Ablation: pin-count sensitivity (the paper's section 2.7 \
     \"target chip set\" argument)";
  let spec = Chop.Rig.experiment1 ~partitions:2 () in
  let sweep =
    Chop.Sensitivity.pin_count spec ~values:[ 84; 64; 48; 40; 32; 24; 16 ]
  in
  print_string (Chop.Sensitivity.render sweep);
  (match Chop.Sensitivity.cliff sweep with
  | Some v -> Printf.printf "feasibility cliff at %.0f pins\n" v
  | None -> print_endline "no feasibility cliff in the swept range");
  print_endline
    "(fewer pins -> slower transfers -> longer system delay, until the\n\
     reserved control/memory lines exhaust the package entirely)"

let ablation_heuristics () =
  section
    "Ablation: the three search heuristics on the hardest run (experiment \
     2, 3 partitions)";
  let t =
    Texttable.create
      [
        ("Heuristic", Texttable.Left); ("Trials", Texttable.Right);
        ("Integrations", Texttable.Right); ("Best II", Texttable.Right);
        ("CPU s", Texttable.Right);
      ]
  in
  let spec = Chop.Rig.experiment2 ~partitions:3 () in
  List.iter
    (fun (name, h) ->
      let report = explore ~heuristic:h spec in
      let st = report.Chop.Explore.outcome.Chop.Search.stats in
      Texttable.add_row t
        [
          name;
          string_of_int st.Chop.Search.implementation_trials;
          string_of_int st.Chop.Search.integrations;
          (match report.Chop.Explore.outcome.Chop.Search.feasible with
          | [] -> "-"
          | s :: _ -> string_of_int s.Chop.Integration.ii_main);
          Printf.sprintf "%.3f" st.Chop.Search.cpu_seconds;
        ])
    [
      ("E (enumeration)", Chop.Explore.Enumeration);
      ("I (iterative, Fig. 5)", Chop.Explore.Iterative);
      ("B (branch-and-bound)", Chop.Explore.Branch_bound);
    ];
  Texttable.print t;
  print_endline
    "(on first-level-pruned lists every combination already passes the\n\
     bounds, so branch-and-bound degenerates to enumeration — the paper's\n\
     two-level pruning does the heavy lifting before any clever search;\n\
     the iterative heuristic stays the cheapest, as the paper observed)"

let ablation_scheduler () =
  section
    "Ablation: BAD's scheduling engine — allocation-driven list scheduling \
     vs length-driven force-directed scheduling [9]";
  let t =
    Texttable.create
      [
        ("Scheduler", Texttable.Left); ("Predictions", Texttable.Right);
        ("Kept", Texttable.Right); ("Best II (k=2)", Texttable.Right);
        ("BAD CPU s", Texttable.Right);
      ]
  in
  List.iter
    (fun (name, scheduler) ->
      let g = Chop_dfg.Benchmarks.ar_lattice_filter () in
      let clocks =
        Chop_tech.Clocking.make ~main:300. ~datapath_ratio:10 ~transfer_ratio:1
      in
      let cfg =
        Chop_bad.Predictor.config ~scheduler
          ~library:Chop_tech.Mosis.experiment_library ~clocks
          ~style:(Chop_tech.Style.both Chop_tech.Style.Single_cycle) ()
      in
      let t0 = Sys.time () in
      let preds = Chop_bad.Predictor.predict cfg ~label:"P1" g in
      let dt = Sys.time () -. t0 in
      let crit = Chop_bad.Feasibility.criteria ~perf:30000. ~delay:30000. () in
      let chip_area =
        Chop_tech.Chip.usable_area Chop_tech.Mosis.package_84 ~signal_pins:42
      in
      let kept = Chop_bad.Predictor.prune cfg ~criteria:crit ~chip_area preds in
      (* best system when both partitions use this scheduler *)
      let best_ii =
        let spec = Chop.Rig.experiment1 ~partitions:2 () in
        (* rebuild predictions with the scheduler under test *)
        let per_partition =
          List.map
            (fun p ->
              let label = p.Chop_dfg.Partition.label in
              let sub =
                Chop_dfg.Partition.subgraph spec.Chop.Spec.partitioning p
              in
              let cfg = { cfg with Chop_bad.Predictor.scheduler } in
              let preds = Chop_bad.Predictor.predict cfg ~label sub in
              let area = Chop.Explore.partition_chip_area spec ~label in
              (label, Chop_bad.Predictor.prune cfg ~criteria:crit ~chip_area:area preds))
            spec.Chop.Spec.partitioning.Chop_dfg.Partition.parts
        in
        let ctx = Chop.Integration.context spec in
        let outcome = Chop.Enum_heuristic.run ctx per_partition in
        match outcome.Chop.Search.feasible with
        | s :: _ -> string_of_int s.Chop.Integration.ii_main
        | [] -> "-"
      in
      Texttable.add_row t
        [ name; string_of_int (List.length preds);
          string_of_int (List.length kept); best_ii; Printf.sprintf "%.2f" dt ])
    [ ("list (default)", Chop_bad.Predictor.List_based);
      ("force-directed", Chop_bad.Predictor.Force_directed) ];
  Texttable.print t;
  print_endline
    "(force-directed scheduling sweeps lengths and minimizes units per\n\
     length: it maps the area-lean region of the space, while list\n\
     scheduling's allocation sweep reaches the deeply parallel, faster\n\
     design points — the two engines explore complementary frontiers)"

let ablation_prediction_accuracy () =
  section
    "Ablation: BAD prediction accuracy vs synthesized netlists (the paper's \
     \"tested using the ADAM Synthesis tools ... very accurate\" claim)";
  let g = Chop_dfg.Benchmarks.ar_lattice_filter () in
  let clocks =
    Chop_tech.Clocking.make ~main:300. ~datapath_ratio:10 ~transfer_ratio:1
  in
  let cfg =
    Chop_bad.Predictor.config ~library:Chop_tech.Mosis.experiment_library
      ~clocks ~style:(Chop_tech.Style.both Chop_tech.Style.Single_cycle) ()
  in
  let report_for name g =
    let preds = Chop_bad.Predictor.predict cfg ~label:name g in
    let nonpipe =
      List.filter
        (fun (p : Chop_bad.Prediction.t) ->
          p.Chop_bad.Prediction.style = Chop_tech.Style.Non_pipelined)
        preds
    in
    let sample = List.filteri (fun i _ -> i mod 13 = 0) nonpipe in
    Printf.printf "%s:\n" name;
    print_string (Chop_rtl.Validate.accuracy_report cfg g sample)
  in
  report_for "ar_lattice_filter" g;
  report_for "elliptic_wave_filter" (Chop_dfg.Benchmarks.elliptic_wave_filter ());
  report_for "dct8" (Chop_dfg.Benchmarks.dct8 ())

let ablation_baseline () =
  section "Ablation: min-cut baseline vs constraint-driven partitioning";
  let g = Chop_dfg.Benchmarks.ar_lattice_filter () in
  let t =
    Texttable.create
      [
        ("Strategy", Texttable.Left); ("Cut bits", Texttable.Right);
        ("Feasible", Texttable.Right); ("Best II", Texttable.Right);
      ]
  in
  List.iter
    (fun strategy ->
      let pg = Chop_baseline.Autopart.generate g ~k:2 strategy in
      let cut = Chop_dfg.Partition.cut_bits_total pg in
      let feas =
        if List.length pg.Chop_dfg.Partition.parts < 2 then []
        else
          let spec =
            Chop.Rig.custom ~graph:g ~partitioning:pg
              ~package:Chop_tech.Mosis.package_84
              ~clocks:
                (Chop_tech.Clocking.make ~main:300. ~datapath_ratio:10
                   ~transfer_ratio:1)
              ~style:(Chop_tech.Style.both Chop_tech.Style.Single_cycle)
              ~criteria:
                (Chop_bad.Feasibility.criteria ~perf:30000. ~delay:30000. ())
              ()
          in
          (explore spec).Chop.Explore.outcome
            .Chop.Search.feasible
      in
      Texttable.add_row t
        [
          Chop_baseline.Autopart.strategy_name strategy; string_of_int cut;
          string_of_int (List.length feas);
          (match feas with
          | [] -> "-"
          | s :: _ -> string_of_int s.Chop.Integration.ii_main);
        ])
    [ Chop_baseline.Autopart.Levels; Chop_baseline.Autopart.Min_cut 1;
      Chop_baseline.Autopart.Random_balanced 42 ];
  Texttable.print t

let ablation_hwsw_codesign () =
  section
    "HW/SW co-design: the pcm_pwm feasibility triangle (implementation-model \
     backends)";
  let module Ops = Chop_server.Ops in
  let spec_with impls =
    let graph =
      match Ops.graph_of_name "pcm_pwm" with
      | Ok g -> g
      | Error m -> failwith m
    in
    Ops.build_spec
      ~processors:(Ops.processors_for ~benchmark:"pcm_pwm" ~impls)
      ~impls ~graph ~partitions:2 ~package:Chop_tech.Mosis.package_84
      ~perf:30000. ~delay:30000. ~multicycle:true
      ~strategy:(Chop_baseline.Autopart.Min_cut 1) ()
  in
  let t =
    Texttable.create
      [
        ("Binding", Texttable.Left); ("Feasible", Texttable.Right);
        ("Best perf ns", Texttable.Right); ("II", Texttable.Right);
        ("Clock ns", Texttable.Right); ("Model flips", Texttable.Right);
      ]
  in
  let row_of name feas flips =
    match feas with
    | [] -> Texttable.add_row t [ name; "0"; "-"; "-"; "-"; flips ]
    | s :: _ ->
        Texttable.add_row t
          [
            name;
            string_of_int (List.length feas);
            Printf.sprintf "%.0f" s.Chop.Integration.perf_ns;
            string_of_int s.Chop.Integration.ii_main;
            Printf.sprintf "%.0f" s.Chop.Integration.clock;
            flips;
          ]
  in
  List.iter
    (fun (name, impls) ->
      let feas =
        (explore (spec_with impls)).Chop.Explore.outcome.Chop.Search.feasible
      in
      row_of name feas "-")
    [
      ("all hardware", []);
      ("all software", [ ("P1", "cpu"); ("P2", "cpu") ]);
    ];
  let o =
    Chop_auto.run ~seed:1
      ~config:(Chop.Explore.Config.make ~cache:Chop.Explore.Config.Off ())
      (spec_with [])
  in
  let bindings =
    String.concat ", "
      (List.map
         (fun p ->
           Printf.sprintf "%s=%s" p.Chop_dfg.Partition.label
             (Chop.Spec.impl_of_partition o.Chop_auto.spec
                p.Chop_dfg.Partition.label))
         o.Chop_auto.spec.Chop.Spec.partitioning.Chop_dfg.Partition.parts)
  in
  row_of
    (Printf.sprintf "refined (%s)" bindings)
    o.Chop_auto.report.Chop.Explore.outcome.Chop.Search.feasible
    (string_of_int o.Chop_auto.impl_flips);
  Texttable.print t;
  print_endline
    "(the all-hardware seed is clock-bound by the multiplier stage and the\n\
     all-software seed is memory-starved into narrow issue; refinement\n\
     rehosts the cheap-op stage onto the embedded core and beats both —\n\
     the co-design loop the Model seam exists to close)"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks *)

let ablation_system_simulation () =
  section
    "Validation: simulating the predicted systems (multi-instance stream \
     through the macro-pipeline)";
  let t =
    Texttable.create
      [
        ("System", Texttable.Left); ("Predicted II", Texttable.Right);
        ("Simulated II", Texttable.Right); ("Predicted delay", Texttable.Right);
        ("Simulated 1st latency", Texttable.Right); ("Pin stalls", Texttable.Right);
        ("Consistent", Texttable.Center);
      ]
  in
  List.iter
    (fun (name, spec) ->
      let ctx = Chop.Integration.context spec in
      let report = explore spec in
      match report.Chop.Explore.outcome.Chop.Search.feasible with
      | [] -> Texttable.add_row t [ name; "-"; "-"; "-"; "-"; "-"; "-" ]
      | s :: _ ->
          let r = Chop.Sysim.simulate ctx ~instances:12 s in
          Texttable.add_row t
            [
              name;
              string_of_int s.Chop.Integration.ii_main;
              Printf.sprintf "%.1f" r.Chop.Sysim.achieved_ii;
              string_of_int s.Chop.Integration.delay_cycles;
              string_of_int r.Chop.Sysim.first_latency;
              string_of_int r.Chop.Sysim.pin_stalls;
              (if Chop.Sysim.throughput_consistent s r then "yes" else "NO");
            ])
    [
      ("exp1, 1 chip", Chop.Rig.experiment1 ~partitions:1 ());
      ("exp1, 2 chips", Chop.Rig.experiment1 ~partitions:2 ());
      ("exp1, 3 chips", Chop.Rig.experiment1 ~partitions:3 ());
      ("exp2, 2 chips", Chop.Rig.experiment2 ~partitions:2 ());
      ("exp2, 3 chips", Chop.Rig.experiment2 ~partitions:3 ());
    ];
  Texttable.print t;
  print_endline
    "(the executed macro-pipeline reproduces the predicted initiation\n\
     interval and first-instance delay, validating the integration model)"

let ablation_chip_level_synthesis () =
  section
    "Validation: chip-level synthesis and layout of the winning designs \
     (section 5's \"synthesize and layout\")";
  let t =
    Texttable.create
      [
        ("System", Texttable.Left); ("Chip", Texttable.Left);
        ("PUs", Texttable.Right); ("DTMs", Texttable.Right);
        ("Cell area", Texttable.Right); ("Floorplan", Texttable.Left);
      ]
  in
  List.iter
    (fun (name, spec) ->
      let ctx = Chop.Integration.context spec in
      match
        (explore spec).Chop.Explore.outcome
          .Chop.Search.feasible
      with
      | [] -> Texttable.add_row t [ name; "-"; "-"; "-"; "-"; "infeasible" ]
      | best :: _ ->
          let sys = Chop_rtl.System.synthesize ctx best in
          List.iter
            (fun cd ->
              Texttable.add_row t
                [
                  name;
                  cd.Chop_rtl.System.chip_name;
                  string_of_int (List.length cd.Chop_rtl.System.pu_netlists);
                  string_of_int (List.length cd.Chop_rtl.System.dtms);
                  Printf.sprintf "%.0f" cd.Chop_rtl.System.total_cell_area;
                  (match cd.Chop_rtl.System.floorplan with
                  | Ok fp ->
                      Printf.sprintf "fits, %.0f%%"
                        (100. *. fp.Chop_rtl.Floorplan.utilization)
                  | Error r -> "FAILS: " ^ r);
                ])
            sys.Chop_rtl.System.chips;
          Texttable.add_separator t)
    [
      ("exp1, 2 chips", Chop.Rig.experiment1 ~partitions:2 ());
      ("exp2, 3 chips", Chop.Rig.experiment2 ~partitions:3 ());
    ];
  Texttable.print t;
  print_endline
    "(every chip of every winning design synthesizes and floorplans inside\n\
     its MOSIS package — CHOP's probabilistic area verdicts hold up under\n\
     exact binding and placement)"

let secondary_workload () =
  section
    "Secondary workload: the elliptic wave filter (26 add, 8 mult) under \
     experiment-2 conditions";
  let t =
    Texttable.create
      [
        ("Partitions", Texttable.Right); ("BAD total", Texttable.Right);
        ("Kept", Texttable.Right); ("H", Texttable.Center);
        ("Trials", Texttable.Right); ("Best II", Texttable.Right);
        ("Delay", Texttable.Right); ("Clock ns", Texttable.Right);
      ]
  in
  List.iter
    (fun k ->
      let graph = Chop_dfg.Benchmarks.elliptic_wave_filter () in
      let partitioning =
        if k = 1 then Chop_dfg.Partition.whole graph
        else Chop_dfg.Partition.by_levels graph ~k
      in
      let spec =
        Chop.Rig.custom ~graph ~partitioning
          ~package:Chop_tech.Mosis.package_84
          ~clocks:
            (Chop_tech.Clocking.make ~main:300. ~datapath_ratio:1
               ~transfer_ratio:1)
          ~style:(Chop_tech.Style.both Chop_tech.Style.Multi_cycle)
          ~criteria:(Chop_bad.Feasibility.criteria ~perf:20000. ~delay:20000. ())
          ()
      in
      let _, stats = bad_predictions spec in
      let total = Listx.sum_by (fun b -> b.Chop.Explore.total_predictions) stats in
      let kept = Listx.sum_by (fun b -> b.Chop.Explore.kept) stats in
      List.iter
        (fun (hname, h) ->
          let report = explore ~heuristic:h spec in
          let st = report.Chop.Explore.outcome.Chop.Search.stats in
          match report.Chop.Explore.outcome.Chop.Search.feasible with
          | [] ->
              Texttable.add_row t
                [ string_of_int k; string_of_int total; string_of_int kept;
                  hname; string_of_int st.Chop.Search.implementation_trials;
                  "-"; "-"; "-" ]
          | s :: _ ->
              Texttable.add_row t
                [
                  string_of_int k; string_of_int total; string_of_int kept;
                  hname; string_of_int st.Chop.Search.implementation_trials;
                  string_of_int s.Chop.Integration.ii_main;
                  string_of_int s.Chop.Integration.delay_cycles;
                  Printf.sprintf "%.0f" s.Chop.Integration.clock;
                ])
        heuristics;
      Texttable.add_separator t)
    [ 1; 2; 3 ];
  Texttable.print t;
  print_endline
    "(the add-dominated EWF is pin- rather than area-limited: the\n\
     single-chip form misses the 20 us target, and partitioning buys its\n\
     rate through parallel cheap adders — a different bottleneck profile\n\
     from the multiplier-heavy AR filter, handled by the same machinery)"

let scale_check () =
  section "Scale check: a 120-operation random specification on 8 chips";
  let graph = Chop_dfg.Benchmarks.random_dag ~ops:120 ~seed:2026 () in
  let partitioning =
    Chop_baseline.Autopart.generate graph ~k:8
      (Chop_baseline.Autopart.Random_balanced 5)
  in
  let spec =
    Chop.Rig.custom ~graph ~partitioning ~package:Chop_tech.Mosis.package_84
      ~clocks:(Chop_tech.Clocking.make ~main:300. ~datapath_ratio:1 ~transfer_ratio:1)
      ~style:(Chop_tech.Style.both Chop_tech.Style.Multi_cycle)
      ~criteria:(Chop_bad.Feasibility.criteria ~perf:100000. ~delay:100000. ())
      ()
  in
  let t0 = Sys.time () in
  let report = explore spec in
  let dt = Sys.time () -. t0 in
  let totals =
    Listx.sum_by (fun b -> b.Chop.Explore.total_predictions) report.Chop.Explore.bad
  in
  Printf.printf
    "120 ops, 8 partitions: %d BAD predictions, %d trials, %d feasible \
     non-inferior designs, %.2f s end to end\n"
    totals
    report.Chop.Explore.outcome.Chop.Search.stats.Chop.Search.implementation_trials
    (List.length report.Chop.Explore.outcome.Chop.Search.feasible)
    dt;
  (match report.Chop.Explore.outcome.Chop.Search.feasible with
  | s :: _ ->
      Printf.printf "best: II %d, delay %d cycles, clock %.0f ns\n"
        s.Chop.Integration.ii_main s.Chop.Integration.delay_cycles
        s.Chop.Integration.clock
  | [] -> print_endline "no feasible design at these constraints");
  print_endline
    "(four times the paper's workload, eight chips, seconds end to end —\n\
     fast enough for the interactive advising loop at modern scale)"

let microbenchmarks () =
  section "Micro-benchmarks (Bechamel, monotonic clock)";
  let open Bechamel in
  let open Toolkit in
  let spec1 = Chop.Rig.experiment1 ~partitions:2 () in
  let spec2 = Chop.Rig.experiment2 ~partitions:2 () in
  let sub =
    Chop_dfg.Partition.subgraph spec1.Chop.Spec.partitioning
      (List.hd spec1.Chop.Spec.partitioning.Chop_dfg.Partition.parts)
  in
  let bad_cfg = Chop.Explore.predictor_config spec1 ~label:"P1" in
  let per_partition, _ = bad_predictions spec1 in
  let ctx = Chop.Integration.context spec1 in
  let comb = List.map (fun (l, ps) -> (l, List.hd ps)) per_partition in
  let tests =
    Test.make_grouped ~name:"chop"
      [
        Test.make ~name:"bad-predict-partition"
          (Staged.stage (fun () ->
               ignore (Chop_bad.Predictor.predict bad_cfg ~label:"P1" sub)));
        Test.make ~name:"system-integration"
          (Staged.stage (fun () -> ignore (Chop.Integration.integrate ctx comb)));
        Test.make ~name:"search-enumeration-exp1-k2"
          (Staged.stage (fun () ->
               ignore (explore ~heuristic:Chop.Explore.Enumeration spec1)));
        Test.make ~name:"search-iterative-exp1-k2"
          (Staged.stage (fun () ->
               ignore (explore spec1)));
        Test.make ~name:"search-enumeration-exp2-k2"
          (Staged.stage (fun () ->
               ignore (explore ~heuristic:Chop.Explore.Enumeration spec2)));
        Test.make ~name:"search-iterative-exp2-k2"
          (Staged.stage (fun () ->
               ignore (explore spec2)));
      ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (est :: _) -> est
          | Some [] | None -> Float.nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let t =
    Texttable.create
      [ ("Benchmark", Texttable.Left); ("Time per run", Texttable.Right) ]
  in
  List.iter
    (fun (name, ns) ->
      let human =
        if Float.is_nan ns then "n/a"
        else if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
        else Printf.sprintf "%.0f ns" ns
      in
      Texttable.add_row t [ name; human ])
    rows;
  Texttable.print t

(* ------------------------------------------------------------------ *)
(* Machine-readable exploration timing: BENCH_explore.json records the
   wall-clock of the keep-all exploration per benchmark x heuristic x jobs,
   so later changes can be tracked against these numbers.  The prediction
   cache is off and every run uses a fresh engine: each entry is an honest
   cold run. *)

let bench_explore_json ?(smoke = false) () =
  section
    (if smoke then "Exploration engine smoke run (EWF only, no JSON)"
     else "Exploration engine timing (BENCH_explore.json)");
  let ewf_spec () =
    let graph = Chop_dfg.Benchmarks.elliptic_wave_filter () in
    Chop.Rig.custom ~graph
      ~partitioning:(Chop_dfg.Partition.by_levels graph ~k:2)
      ~package:Chop_tech.Mosis.package_84
      ~clocks:
        (Chop_tech.Clocking.make ~main:300. ~datapath_ratio:1
           ~transfer_ratio:1)
      ~style:(Chop_tech.Style.both Chop_tech.Style.Multi_cycle)
      ~criteria:(Chop_bad.Feasibility.criteria ~perf:20000. ~delay:20000. ())
      ()
  in
  let ar_spec () = Chop.Rig.experiment1 ~partitions:2 () in
  let benches =
    if smoke then [ ("ewf", ewf_spec) ]
    else [ ("ewf", ewf_spec); ("ar", ar_spec) ]
  in
  (* one timed keep-all run per benchmark x heuristic x jobs x pre-prune;
     the pre_prune=false rows keep the numbers comparable with the
     pre-dominance-pruning history of this file *)
  let runs =
    List.concat_map
      (fun (bench_name, spec_of) ->
        List.concat_map
          (fun (h_name, h) ->
            List.concat_map
              (fun jobs ->
                List.map
                  (fun pre_prune ->
                    let spec = spec_of () in
                    let t0 = Unix.gettimeofday () in
                    let report =
                      explore ~heuristic:h ~keep_all:true ~pre_prune ~jobs
                        spec
                    in
                    let wall = Unix.gettimeofday () -. t0 in
                    (bench_name, h_name, jobs, pre_prune, wall, report))
                  [ true; false ])
              [ 1; 4 ])
          [ ("E", Chop.Explore.Enumeration); ("B", Chop.Explore.Branch_bound) ])
      benches
  in
  let entries =
    List.map
      (fun (bench_name, h_name, jobs, pre_prune, wall, report) ->
        let m = report.Chop.Explore.metrics in
        let st = report.Chop.Explore.outcome.Chop.Search.stats in
        let trials = st.Chop.Search.implementation_trials in
        let search_wall =
          m.Chop.Explore.Metrics.search.Chop.Explore.Metrics.wall_seconds
        in
        let per_second =
          if search_wall > 0. then float_of_int trials /. search_wall else 0.
        in
        Printf.printf
          "  %-4s %-2s jobs=%d prune=%-5b %8.3f s wall  (%d explored, %d \
           trials, %d avoided, %.0f comb/s)\n"
          bench_name h_name jobs pre_prune wall
          (List.length report.Chop.Explore.outcome.Chop.Search.explored)
          trials st.Chop.Search.integrations_avoided per_second;
        Printf.sprintf
          "    {\"benchmark\": \"%s\", \"heuristic\": \"%s\", \
           \"jobs\": %d, \"keep_all\": true, \"wall_seconds\": %.6f, \
           \"predict_wall_seconds\": %.6f, \"predict_busy_seconds\": \
           %.6f, \"search_wall_seconds\": %.6f, \
           \"search_busy_seconds\": %.6f, \"merge_wall_seconds\": \
           %.6f, \"chunks\": %d, \"cache_hits\": %d, \
           \"cache_misses\": %d, \"cache_evictions\": %d, \
           \"cache_structural_hits\": %d, \
           \"pre_prune\": %b, \"trials\": %d, \
           \"integrations\": %d, \"integrations_avoided\": %d, \
           \"pruned_impls\": %d, \"chip_cache_hits\": %d, \
           \"combinations_per_second\": %.1f}"
          bench_name h_name jobs wall
          m.Chop.Explore.Metrics.predict.Chop.Explore.Metrics.wall_seconds
          m.Chop.Explore.Metrics.predict.Chop.Explore.Metrics.busy_seconds
          search_wall
          m.Chop.Explore.Metrics.search.Chop.Explore.Metrics.busy_seconds
          m.Chop.Explore.Metrics.merge_wall_seconds
          m.Chop.Explore.Metrics.chunk_count
          m.Chop.Explore.Metrics.cache_hits
          m.Chop.Explore.Metrics.cache_misses
          m.Chop.Explore.Metrics.cache_evictions
          m.Chop.Explore.Metrics.cache_structural_hits pre_prune trials
          st.Chop.Search.integrations st.Chop.Search.integrations_avoided
          m.Chop.Explore.Metrics.pruned_impls
          m.Chop.Explore.Metrics.chip_cache_hits per_second)
      runs
  in
  (* sequential vs --jobs: same work split across the pool *)
  print_newline ();
  let t =
    Texttable.create ~title:"search wall: sequential vs --jobs 4"
      [
        ("Benchmark", Texttable.Left); ("H", Texttable.Center);
        ("Pre-prune", Texttable.Center); ("jobs=1 s", Texttable.Right);
        ("jobs=4 s", Texttable.Right); ("Speedup", Texttable.Right);
      ]
  in
  let search_wall_of want_jobs bench h prune =
    List.find_map
      (fun (b, hn, jobs, pp, _, report) ->
        if b = bench && hn = h && jobs = want_jobs && pp = prune then
          Some
            report.Chop.Explore.metrics.Chop.Explore.Metrics.search
              .Chop.Explore.Metrics.wall_seconds
        else None)
      runs
  in
  List.iter
    (fun (bench, h, prune) ->
      match (search_wall_of 1 bench h prune, search_wall_of 4 bench h prune) with
      | Some w1, Some w4 ->
          Texttable.add_row t
            [
              bench; h;
              (if prune then "on" else "off");
              Printf.sprintf "%.3f" w1;
              Printf.sprintf "%.3f" w4;
              (if w4 > 0. then Printf.sprintf "%.2fx" (w1 /. w4) else "-");
            ]
      | _ -> ())
    (List.concat_map
       (fun (bench, _) ->
         List.concat_map
           (fun h -> [ (bench, h, true); (bench, h, false) ])
           [ "E"; "B" ])
       benches);
  Texttable.print t;
  if smoke then print_endline "  smoke OK (BENCH_explore.json left untouched)"
  else begin
    let oc = open_out "BENCH_explore.json" in
    Printf.fprintf oc
      "{\n  \"host_cores\": %d,\n  \"entries\": [\n%s\n  ]\n}\n"
      (Domain.recommended_domain_count ())
      (String.concat ",\n" entries);
    close_out oc;
    print_endline "  wrote BENCH_explore.json"
  end

(* ------------------------------------------------------------------ *)

(* [bench serve]: load-generate against an in-process chop server over a
   Unix-domain socket.  Cold requests hit fresh engine keys (engine
   construction + BAD prediction); warm requests repeat the first key and
   ride the persistent engine and shared prediction cache.  Writes
   BENCH_serve.json (also in --smoke mode: the file is the acceptance
   artifact). *)
let bench_serve_json ?(smoke = false) () =
  let module Server = Chop_server.Server in
  let module Client = Chop_server.Client in
  let module Protocol = Chop_server.Protocol in
  section
    (if smoke then "bench serve --smoke: cold vs warm request latency"
     else "bench serve: cold vs warm request latency");
  let socket_path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "chop-bench-serve-%d.sock" (Unix.getpid ()))
  in
  let concurrency = 2 and queue = 32 and jobs = 1 in
  let server =
    Server.create
      {
        Server.default_config with
        socket_path = Some socket_path;
        concurrency;
        queue;
        jobs;
        log = None;
        handle_signals = false;
      }
  in
  let server_thread = Thread.create Server.serve server in
  let client =
    (* the listener is up before [create] returns; retry briefly anyway *)
    let rec retry n =
      match Client.connect socket_path with
      | c -> c
      | exception Unix.Unix_error _ when n > 0 ->
          Thread.delay 0.05;
          retry (n - 1)
    in
    retry 40
  in
  let request ~id ~perf =
    Protocol.request_to_json
      {
        Protocol.id;
        op = Protocol.Explore;
        deadline_ms = None;
        params =
          {
            Protocol.default_params with
            benchmark = "ewf";
            partitions = 2;
            perf;
            keep_all = true;
          };
      }
  in
  let timed_rpc json =
    let t0 = Unix.gettimeofday () in
    match Client.rpc client json with
    | Ok resp ->
        let ms = (Unix.gettimeofday () -. t0) *. 1000. in
        if Protocol.response_ok resp <> Some true then
          failwith "bench serve: request failed";
        ms
    | Error msg -> failwith ("bench serve: " ^ msg)
  in
  let cold_n = if smoke then 3 else 8 in
  let warm_n = if smoke then 12 else 40 in
  let t_start = Unix.gettimeofday () in
  (* distinct perf constraints -> distinct engine keys -> every request
     builds its engine and predicts from an empty per-engine state *)
  let cold =
    List.init cold_n (fun i ->
        timed_rpc
          (request
             ~id:(Printf.sprintf "cold-%d" i)
             ~perf:(30000. +. (100. *. float_of_int i))))
  in
  (* repeats of the first cold key: warm engine, warm prediction cache *)
  let warm =
    List.init warm_n (fun i ->
        timed_rpc (request ~id:(Printf.sprintf "warm-%d" i) ~perf:30000.))
  in
  let wall = Unix.gettimeofday () -. t_start in
  (* cross-session pass: "ewf2" is ewf rebuilt in a shuffled construction
     order, so a fresh engine on it can only be served by the prediction
     cache's content-addressed keys.  Cold samples predict ewf at
     partition counts untouched above; the paired ewf2 engines must then
     predict entirely from structural hits — raw misses mean the
     content-addressed keys failed. *)
  let xrequest ~id ~benchmark ~partitions =
    Protocol.request_to_json
      {
        Protocol.id;
        op = Protocol.Explore;
        deadline_ms = None;
        params =
          { Protocol.default_params with benchmark; partitions; keep_all = true };
      }
  in
  let rpc_timing json =
    match Client.rpc client json with
    | Ok resp ->
        if Protocol.response_ok resp <> Some true then
          failwith "bench serve: request failed";
        let field name =
          Option.bind (Chop_util.Json.member "timing" resp)
            (Chop_util.Json.member name)
        in
        let predict_ms =
          match Option.bind (field "predict_ms") Chop_util.Json.to_float_opt with
          | Some v -> v
          | None -> failwith "bench serve: predict_ms missing from timing"
        in
        let int name =
          match Option.bind (field name) Chop_util.Json.to_int_opt with
          | Some v -> v
          | None -> failwith ("bench serve: " ^ name ^ " missing from timing")
        in
        (predict_ms, int "cache_misses", int "cache_structural_hits")
    | Error msg -> failwith ("bench serve: " ^ msg)
  in
  let xsession_n = if smoke then 3 else 6 in
  (* k = 2 is already warm from the passes above; k = 1 (the whole-graph
     enumeration, the costliest cold predict) plus k >= 3 stay cold *)
  let xsession_ks =
    List.init xsession_n (fun i -> if i = 0 then 1 else i + 2)
  in
  let xcold =
    List.map
      (fun k ->
        let ms, _, _ =
          rpc_timing
            (xrequest ~id:(Printf.sprintf "xcold-%d" k) ~benchmark:"ewf"
               ~partitions:k)
        in
        ms)
      xsession_ks
  in
  let xwarm_samples =
    List.map
      (fun k ->
        rpc_timing
          (xrequest ~id:(Printf.sprintf "xwarm-%d" k) ~benchmark:"ewf2"
             ~partitions:k))
      xsession_ks
  in
  let xwarm = List.map (fun (ms, _, _) -> ms) xwarm_samples in
  let xwarm_misses =
    List.fold_left (fun acc (_, m, _) -> acc + m) 0 xwarm_samples
  in
  let xwarm_structural =
    List.fold_left (fun acc (_, _, s) -> acc + s) 0 xwarm_samples
  in
  Client.close client;
  Server.stop server;
  Thread.join server_thread;
  let total = cold_n + warm_n in
  let req_per_s = if wall > 0. then float_of_int total /. wall else 0. in
  let percentile sorted q =
    let n = Array.length sorted in
    let rank = int_of_float (ceil (q *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) rank))
  in
  let stats_of samples =
    let a = Array.of_list samples in
    Array.sort compare a;
    let mean = Array.fold_left ( +. ) 0. a /. float_of_int (Array.length a) in
    (percentile a 0.50, percentile a 0.95, percentile a 0.99, mean)
  in
  let c50, c95, c99, cmean = stats_of cold in
  let w50, w95, w99, wmean = stats_of warm in
  Printf.printf "  %d requests in %.3f s (%.1f req/s)\n" total wall req_per_s;
  Printf.printf
    "  cold (n=%d): p50 %.3f ms  p95 %.3f ms  p99 %.3f ms  mean %.3f ms\n"
    cold_n c50 c95 c99 cmean;
  Printf.printf
    "  warm (n=%d): p50 %.3f ms  p95 %.3f ms  p99 %.3f ms  mean %.3f ms\n"
    warm_n w50 w95 w99 wmean;
  let warm_faster = w50 < c50 in
  Printf.printf "  warm p50 < cold p50: %b (%.2fx)\n" warm_faster
    (if w50 > 0. then c50 /. w50 else 0.);
  let x50c, x95c, x99c, xmeanc = stats_of xcold in
  let x50w, x95w, x99w, xmeanw = stats_of xwarm in
  let xsession_ok = x50w *. 5. <= x50c && xwarm_misses = 0 && xwarm_structural > 0 in
  Printf.printf
    "  xsession cold predict (ewf,  n=%d): p50 %.3f ms  p95 %.3f ms  mean %.3f ms\n"
    xsession_n x50c x95c xmeanc;
  Printf.printf
    "  xsession warm predict (ewf2, n=%d): p50 %.3f ms  p95 %.3f ms  mean %.3f ms\n"
    xsession_n x50w x95w xmeanw;
  Printf.printf
    "  xsession: %d structural hit(s), %d miss(es), warm p50 %.1fx below cold: %b\n"
    xwarm_structural xwarm_misses
    (if x50w > 0. then x50c /. x50w else 0.)
    xsession_ok;
  let oc = open_out "BENCH_serve.json" in
  Printf.fprintf oc
    "{\n\
    \  \"host_cores\": %d,\n\
    \  \"mode\": \"%s\",\n\
    \  \"concurrency\": %d,\n\
    \  \"queue\": %d,\n\
    \  \"jobs\": %d,\n\
    \  \"requests\": %d,\n\
    \  \"wall_seconds\": %.6f,\n\
    \  \"requests_per_second\": %.1f,\n\
    \  \"cold\": {\"count\": %d, \"p50_ms\": %.3f, \"p95_ms\": %.3f, \
     \"p99_ms\": %.3f, \"mean_ms\": %.3f},\n\
    \  \"warm\": {\"count\": %d, \"p50_ms\": %.3f, \"p95_ms\": %.3f, \
     \"p99_ms\": %.3f, \"mean_ms\": %.3f},\n\
    \  \"warm_p50_lt_cold_p50\": %b,\n\
    \  \"xsession\": {\"cold\": {\"count\": %d, \"p50_ms\": %.3f, \
     \"p95_ms\": %.3f, \"p99_ms\": %.3f, \"mean_ms\": %.3f}, \
     \"warm\": {\"count\": %d, \"p50_ms\": %.3f, \"p95_ms\": %.3f, \
     \"p99_ms\": %.3f, \"mean_ms\": %.3f}, \"structural_hits\": %d, \
     \"warm_misses\": %d, \"warm_p50_x5_le_cold_p50\": %b}\n\
     }\n"
    (Domain.recommended_domain_count ())
    (if smoke then "smoke" else "full")
    concurrency queue jobs total wall req_per_s cold_n c50 c95 c99 cmean
    warm_n w50 w95 w99 wmean warm_faster xsession_n x50c x95c x99c xmeanc
    xsession_n x50w x95w x99w xmeanw xwarm_structural xwarm_misses xsession_ok;
  close_out oc;
  print_endline "  wrote BENCH_serve.json";
  if not warm_faster then begin
    prerr_endline "bench serve: warm p50 was not below cold p50";
    exit 1
  end;
  if not xsession_ok then begin
    prerr_endline
      "bench serve: cross-session pass failed (structural hits absent, raw \
       misses present, or warm predict p50 not 5x below cold)";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Interactive-session micro-benchmark: cold exploration vs warm re-runs
   after single edits, with the Metrics cache counters asserting the
   incremental contract — a re-run after an edit misses the prediction
   cache exactly for the partitions the edit dirtied and nowhere else.
   Runs on a private cache (Config.Custom) so the counters are exact. *)

let bench_session_json ?(smoke = false) () =
  section
    (if smoke then "Interactive session smoke run (EWF only, no JSON)"
     else "Interactive session timing (BENCH_session.json)");
  let ewf_spec () =
    let graph = Chop_dfg.Benchmarks.elliptic_wave_filter () in
    Chop.Rig.custom ~graph
      ~partitioning:(Chop_dfg.Partition.by_levels graph ~k:3)
      ~package:Chop_tech.Mosis.package_84
      ~clocks:
        (Chop_tech.Clocking.make ~main:300. ~datapath_ratio:1
           ~transfer_ratio:1)
      ~style:(Chop_tech.Style.both Chop_tech.Style.Multi_cycle)
      ~criteria:(Chop_bad.Feasibility.criteria ~perf:20000. ~delay:20000. ())
      ()
  in
  let ar_spec () = Chop.Rig.experiment1 ~partitions:3 () in
  let benches =
    if smoke then [ ("ewf", ewf_spec) ]
    else [ ("ewf", ewf_spec); ("ar", ar_spec) ]
  in
  let failed = ref false in
  let check name cond =
    Printf.printf "  %-44s %s\n" name (if cond then "ok" else "FAIL");
    if not cond then failed := true
  in
  let rows =
    List.map
      (fun (bench_name, spec_of) ->
        let spec = spec_of () in
        let parts =
          spec.Chop.Spec.partitioning.Chop_dfg.Partition.parts
        in
        let k = List.length parts in
        let config =
          Chop.Explore.Config.make ~jobs:1
            ~cache:(Chop.Explore.Config.Custom (Chop.Pred_cache.create ()))
            ()
        in
        let session = Chop.Explore.Session.create config spec in
        Fun.protect ~finally:(fun () -> Chop.Explore.Session.close session)
        @@ fun () ->
        let timed_run () =
          let t0 = Unix.gettimeofday () in
          let report = Chop.Explore.Session.run session in
          (Unix.gettimeofday () -. t0, report)
        in
        Printf.printf "  %s (%d partitions):\n" bench_name k;
        let cold_wall, cold = timed_run () in
        (* structurally identical partitions (ar's repeated lattice stages)
           share a cache key, so a cold run may legitimately hit on a
           twin's entry; every partition is still accounted for *)
        check "cold run predicts every partition"
          (cold.Chop.Explore.cache_misses >= 1
          && cold.Chop.Explore.cache_misses + cold.Chop.Explore.cache_hits = k);
        (* one merge: the single-dirty edit — only the absorbing partition
           re-predicts, every untouched partition hits the cache *)
        let p3 = List.nth parts 2 and p2 = List.nth parts 1 in
        let dirty =
          match
            Chop.Explore.Session.edit session
              [ Chop.Spec.Merge_parts
                  { src = p3.Chop_dfg.Partition.label;
                    dst = p2.Chop_dfg.Partition.label } ]
          with
          | Ok d -> d
          | Error e ->
              failwith (Format.asprintf "%a" Chop.Spec.pp_update_error e)
        in
        let merge_wall, merged = timed_run () in
        check "merge dirties exactly one partition"
          (List.length dirty.Chop.Spec.repredict = 1);
        check "misses after merge == dirty partitions"
          (merged.Chop.Explore.cache_misses
           = List.length dirty.Chop.Spec.repredict
          && merged.Chop.Explore.cache_hits = k - 2);
        (* a criteria change re-screens everything but re-predicts nothing:
           the raw enumeration layer of the cache serves every partition *)
        let criteria_edit =
          Chop.Spec.Set_criteria
            (Chop_bad.Feasibility.criteria ~perf:25000. ~delay:25000. ())
        in
        (match Chop.Explore.Session.edit session [ criteria_edit ] with
        | Ok d -> check "criteria edit re-predicts nothing" (d.Chop.Spec.repredict = [])
        | Error e ->
            failwith (Format.asprintf "%a" Chop.Spec.pp_update_error e));
        let warm_wall, warm = timed_run () in
        check "criteria re-run misses nothing"
          (warm.Chop.Explore.cache_misses = 0
          && warm.Chop.Explore.cache_hits = k - 1);
        check "warm edit latency well under cold explore"
          (warm_wall < cold_wall /. 2.);
        (* reopen the edited spec the way another frontend would build it:
           same structure, different construction order (node ids shuffled).
           Sharing this session's private cache, the new session can only
           be served by the content-addressed keys — every partition must
           come back as a structural hit, none as a BAD enumeration *)
        let reopen_structural =
          if bench_name <> "ewf" then 0
          else begin
            let graph2 =
              Chop_dfg.Transform.renumber
                (Chop_dfg.Benchmarks.elliptic_wave_filter ())
            in
            let spec2 =
              Chop.Rig.custom ~graph:graph2
                ~partitioning:(Chop_dfg.Partition.by_levels graph2 ~k:3)
                ~package:Chop_tech.Mosis.package_84
                ~clocks:
                  (Chop_tech.Clocking.make ~main:300. ~datapath_ratio:1
                     ~transfer_ratio:1)
                ~style:(Chop_tech.Style.both Chop_tech.Style.Multi_cycle)
                ~criteria:
                  (Chop_bad.Feasibility.criteria ~perf:25000. ~delay:25000. ())
                ()
            in
            let session2 = Chop.Explore.Session.create config spec2 in
            Fun.protect ~finally:(fun () -> Chop.Explore.Session.close session2)
            @@ fun () ->
            let reopened = Chop.Explore.Session.run session2 in
            let structural =
              reopened.Chop.Explore.metrics
                .Chop.Explore.Metrics.cache_structural_hits
            in
            check "reopened spec is served by structural hits"
              (structural > 0 && reopened.Chop.Explore.cache_misses = 0);
            structural
          end
        in
        Printf.printf
          "    cold %.3f ms   merge-warm %.3f ms   criteria-warm %.3f ms\n"
          (cold_wall *. 1000.) (merge_wall *. 1000.) (warm_wall *. 1000.);
        (bench_name, k, cold_wall, merge_wall, warm_wall, reopen_structural))
      benches
  in
  if smoke then
    print_endline "  smoke OK (BENCH_session.json left untouched)"
  else begin
    let oc = open_out "BENCH_session.json" in
    Printf.fprintf oc "{\n  \"host_cores\": %d,\n  \"benches\": [\n"
      (Domain.recommended_domain_count ());
    List.iteri
      (fun i (name, k, cold, merge, warm, reopen_structural) ->
        Printf.fprintf oc
          "    {\"bench\": \"%s\", \"partitions\": %d, \
           \"cold_ms\": %.3f, \"merge_warm_ms\": %.3f, \
           \"criteria_warm_ms\": %.3f, \"reopen_structural_hits\": %d}%s\n"
          name k (cold *. 1000.) (merge *. 1000.) (warm *. 1000.)
          reopen_structural
          (if i = List.length rows - 1 then "" else ","))
      rows;
    Printf.fprintf oc "  ]\n}\n";
    close_out oc;
    print_endline "  wrote BENCH_session.json"
  end;
  if !failed then begin
    prerr_endline "bench session: incremental contract violated";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Automatic partitioner: BENCH_auto.json.

   One row per paper benchmark, each a (k, constraints) point chosen so
   the space is interesting: on some rows the Min_cut seed is already
   feasible (auto must keep it and may improve area/performance), on
   others only a different strategy finds feasibility and auto has to
   move its way out.  The harness asserts the ISSUE acceptance criteria:
   auto finds feasibility wherever any Autopart strategy does, beats the
   Min_cut seed on at least 3 rows, and the refinement prediction-cache
   hit rate stays >= 50% in aggregate. *)

let bench_auto_json ?(smoke = false) () =
  section
    (if smoke then "Automatic partitioner smoke run (EWF only, no JSON)"
     else "Automatic partitioner vs Min_cut seed (BENCH_auto.json)");
  let module Ops = Chop_server.Ops in
  let rows =
    (* name, partitions, perf ns, delay ns, multicycle *)
    if smoke then [ ("ewf", 3, 30000., 30000., true) ]
    else
      [
        ("ar", 3, 30000., 30000., false);
        ("ewf", 3, 30000., 30000., true);
        ("fir8", 2, 6000., 30000., false);
        ("fir16", 2, 30000., 30000., false);
        ("diffeq", 2, 6000., 30000., false);
        ("dct8", 4, 30000., 30000., false);
      ]
  in
  let failed = ref false in
  let check name cond =
    Printf.printf "  %-52s %s\n" name (if cond then "ok" else "FAIL");
    if not cond then failed := true
  in
  let spec_of name k perf delay multicycle strategy =
    let graph =
      match Ops.graph_of_name name with
      | Ok g -> g
      | Error m -> failwith m
    in
    Ops.build_spec
      ~processors:(Ops.processors_for ~benchmark:name ~impls:[])
      ~graph ~partitions:k ~package:Chop_tech.Mosis.package_84 ~perf ~delay
      ~multicycle ~strategy ()
  in
  let feasible_of (r : Chop.Explore.report) =
    match r.Chop.Explore.outcome.Chop.Search.feasible with
    | [] -> None
    | best :: _ ->
        let o = Chop.Integration.objectives best in
        Some (o.(0), o.(2)) (* perf ns, likely total area *)
  in
  let jobs_n =
    (* bench auto [--jobs N] sets the parallel run's job count *)
    let rec scan i =
      if i + 1 >= Array.length Sys.argv then 4
      else if Sys.argv.(i) = "--jobs" then
        (try max 2 (int_of_string Sys.argv.(i + 1)) with _ -> 4)
      else scan (i + 1)
    in
    scan 0
  in
  let cores = Domain.recommended_domain_count () in
  Printf.printf "  parallel runs: jobs=%d (host reports %d core(s))\n" jobs_n
    cores;
  (* Each row runs twice over a fresh private cache (so the counters and
     the walls are exactly that run's): sequential, then jobs_n.  The
     parallel pool oversubscribes past the core clamp so the speculative
     path really runs multiple domains even on small hosts — walls stay
     honest for the host either way. *)
  let run_auto name k perf delay multicycle ~jobs =
    let config =
      Chop.Explore.Config.make ~jobs
        ~cache:(Chop.Explore.Config.Custom (Chop.Pred_cache.create ()))
        ()
    in
    let seed_spec =
      spec_of name k perf delay multicycle (Chop_baseline.Autopart.Min_cut 1)
    in
    if jobs = 1 then Chop_auto.run ~config seed_spec
    else begin
      let pool = Chop_util.Pool.create ~oversubscribe:true ~jobs () in
      Fun.protect
        ~finally:(fun () -> Chop_util.Pool.shutdown pool)
        (fun () -> Chop_auto.run ~pool ~config seed_spec)
    end
  in
  let results =
    List.map
      (fun (name, k, perf, delay, multicycle) ->
        Printf.printf "  %s (k=%d, perf %.0f ns, delay %.0f ns%s):\n" name k
          perf delay
          (if multicycle then ", multi-cycle" else "");
        (* which strategies find feasibility on this row? *)
        let strategy_feasible =
          List.map
            (fun (sname, s) ->
              let r = explore (spec_of name k perf delay multicycle s) in
              (sname, feasible_of r <> None))
            [
              ("levels", Chop_baseline.Autopart.Levels);
              ("min-cut", Chop_baseline.Autopart.Min_cut 1);
              ("random", Chop_baseline.Autopart.Random_balanced 1);
            ]
        in
        let any_strategy =
          List.exists (fun (_, f) -> f) strategy_feasible
        in
        let o = run_auto name k perf delay multicycle ~jobs:1 in
        let oj = run_auto name k perf delay multicycle ~jobs:jobs_n in
        check
          (Printf.sprintf "jobs-1 vs jobs-%d results byte-identical" jobs_n)
          (String.equal
             (Ops.render_auto o.Chop_auto.spec o)
             (Ops.render_auto oj.Chop_auto.spec oj));
        let speedup =
          o.Chop_auto.wall_seconds /. Float.max 1e-9 oj.Chop_auto.wall_seconds
        in
        let seed = feasible_of o.Chop_auto.seed_report in
        let final = feasible_of o.Chop_auto.report in
        let beats =
          match (seed, final) with
          | None, Some _ -> true (* verdict flip *)
          | Some (sp, sa), Some (fp, fa) -> fp < sp || fa < sa
          | _, None -> false
        in
        check "auto feasible wherever any strategy is"
          ((not any_strategy) || final <> None);
        check "auto no worse than the Min_cut seed"
          (match (seed, final) with
          | Some _, None -> false
          | _ -> true);
        Printf.printf
          "    seed %s   auto %s   %d move(s) tried, %d accepted, cache %d/%d \
           (%.1f%% hits)\n"
          (match seed with
          | None -> "infeasible"
          | Some (p, a) -> Printf.sprintf "perf %.0f area %.0f" p a)
          (match final with
          | None -> "infeasible"
          | Some (p, a) -> Printf.sprintf "perf %.0f area %.0f" p a)
          o.Chop_auto.moves_tried o.Chop_auto.moves_accepted
          o.Chop_auto.cache_hits o.Chop_auto.cache_misses
          (100.
          *. float_of_int o.Chop_auto.cache_hits
          /. float_of_int (max 1 (o.Chop_auto.cache_hits + o.Chop_auto.cache_misses)));
        Printf.printf
          "    wall %.3f s (jobs=1) / %.3f s (jobs=%d): %.2fx, %d \
           speculative run(s) over %d round(s)\n"
          o.Chop_auto.wall_seconds oj.Chop_auto.wall_seconds jobs_n speedup
          o.Chop_auto.speculative_runs o.Chop_auto.batch_rounds;
        (name, k, perf, delay, multicycle, strategy_feasible, seed, final,
         beats, o, oj, speedup))
      rows
  in
  let hits =
    List.fold_left
      (fun a (_, _, _, _, _, _, _, _, _, o, _, _) -> a + o.Chop_auto.cache_hits)
      0 results
  in
  let misses =
    List.fold_left
      (fun a (_, _, _, _, _, _, _, _, _, o, _, _) ->
        a + o.Chop_auto.cache_misses)
      0 results
  in
  let hit_rate = float_of_int hits /. float_of_int (max 1 (hits + misses)) in
  let beaten =
    List.length
      (List.filter (fun (_, _, _, _, _, _, _, _, b, _, _, _) -> b) results)
  in
  Printf.printf "  aggregate refinement cache hit rate %.1f%%, seed beaten on \
                 %d/%d rows\n"
    (100. *. hit_rate) beaten (List.length results);
  (* the probe-score memo now skips redundant runs outright, so the small
     single-row smoke set sees relatively more cold misses; the full set
     stays well above 50% *)
  let hit_floor = if smoke then 0.3 else 0.5 in
  check
    (Printf.sprintf "aggregate refinement cache hit rate >= %.0f%%"
       (100. *. hit_floor))
    (hit_rate >= hit_floor);
  if not smoke then begin
    check "beats the Min_cut seed on >= 3 benchmarks" (beaten >= 3);
    (* the speedup target needs real cores behind the pool; on smaller
       hosts the ratio is recorded in the JSON but not asserted *)
    List.iter
      (fun (name, _, _, _, _, _, _, _, _, _, _, speedup) ->
        if name = "dct8" then
          if cores >= 4 then
            check "dct8 speedup >= 2.5x at jobs=4" (speedup >= 2.5)
          else
            Printf.printf
              "  dct8 speedup %.2fx — >= 2.5x assertion skipped (host has \
               %d core(s), needs >= 4)\n"
              speedup cores)
      results
  end;
  if smoke then print_endline "  smoke OK (BENCH_auto.json left untouched)"
  else begin
    let oc = open_out "BENCH_auto.json" in
    Printf.fprintf oc
      "{\n\
      \  \"seed_strategy\": \"min-cut\",\n\
      \  \"refinement_cache_hit_rate\": %.3f,\n\
      \  \"rows_beating_seed\": %d,\n\
      \  \"parallel_jobs\": %d,\n\
      \  \"host_cores\": %d,\n\
      \  \"jobs_byte_identical\": %b,\n\
      \  \"benches\": [\n"
      hit_rate beaten jobs_n cores (not !failed);
    List.iteri
      (fun i (name, k, perf, delay, multicycle, strategy_feasible, seed, final,
              beats, o, oj, speedup) ->
        let verdict = function None -> "infeasible" | Some _ -> "feasible" in
        let obj field = function
          | None -> "null"
          | Some (p, a) ->
              Printf.sprintf "%.0f" (if field = `Perf then p else a)
        in
        Printf.fprintf oc
          "    {\"bench\": \"%s\", \"partitions\": %d, \"perf_ns\": %.0f, \
           \"delay_ns\": %.0f, \"multicycle\": %b,\n\
          \     \"strategies\": {%s},\n\
          \     \"seed\": {\"verdict\": \"%s\", \"perf_ns\": %s, \"area\": %s},\n\
          \     \"auto\": {\"verdict\": \"%s\", \"perf_ns\": %s, \"area\": %s, \
           \"beats_seed\": %b,\n\
          \              \"levels\": %d, \"coarse_clusters\": %d, \
           \"moves_tried\": %d, \"moves_accepted\": %d,\n\
          \              \"speculative_runs\": %d, \"batch_rounds\": %d,\n\
          \              \"cache_hits\": %d, \"cache_misses\": %d, \
           \"cache_structural_hits\": %d,\n\
          \              \"wall_s_jobs1\": %.3f, \"wall_s_jobs%d\": %.3f, \
           \"speedup\": %.2f}}%s\n"
          name k perf delay multicycle
          (String.concat ", "
             (List.map
                (fun (s, f) -> Printf.sprintf "\"%s\": \"%s\"" s
                    (if f then "feasible" else "infeasible"))
                strategy_feasible))
          (verdict seed) (obj `Perf seed) (obj `Area seed)
          (verdict final) (obj `Perf final) (obj `Area final) beats
          o.Chop_auto.levels o.Chop_auto.coarse_clusters
          o.Chop_auto.moves_tried o.Chop_auto.moves_accepted
          o.Chop_auto.speculative_runs o.Chop_auto.batch_rounds
          o.Chop_auto.cache_hits o.Chop_auto.cache_misses
          o.Chop_auto.cache_structural_hits o.Chop_auto.wall_seconds jobs_n
          oj.Chop_auto.wall_seconds speedup
          (if i = List.length results - 1 then "" else ","))
      results;
    Printf.fprintf oc "  ]\n}\n";
    close_out oc;
    print_endline "  wrote BENCH_auto.json"
  end;
  if !failed then begin
    prerr_endline "bench auto: acceptance criteria violated";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* [bench gateway]: real [chop serve] subprocesses behind the in-process
   gateway — subprocesses, because two backends in one OCaml process
   would share a runtime lock and could never show cluster throughput.
   Measures warm explore req/s through one backend directly vs through
   the gateway over two backends (distinct engine keys, so the ring
   spreads the load), asserts response-text parity, and exercises the
   snapshot save/reopen path asserting the content-addressed cache
   serves the restored session without raw prediction work.  Writes
   BENCH_gateway.json (also in --smoke: the file is the acceptance
   artifact). *)

let bench_gateway_json ?(smoke = false) () =
  let module Client = Chop_server.Client in
  let module Protocol = Chop_server.Protocol in
  let module Ops = Chop_server.Ops in
  let module Gateway = Chop_gateway.Gateway in
  let module Ring = Chop_gateway.Ring in
  let module Json = Chop_util.Json in
  section
    (if smoke then "bench gateway --smoke: 2 backends vs 1, snapshot restore"
     else "bench gateway: 2 backends vs 1, snapshot restore");
  (* the gateway serve thread writes to client sockets from this process *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let cli =
    match Sys.getenv_opt "CHOP_CLI" with
    | Some p -> p
    | None ->
        Filename.concat
          (Filename.dirname Sys.executable_name)
          "../bin/chop_cli.exe"
  in
  if not (Sys.file_exists cli) then begin
    Printf.eprintf
      "bench gateway: chop binary not found at %s (build bin/ or set \
       CHOP_CLI)\n"
      cli;
    exit 1
  end;
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "chop-bench-gw-%d" (Unix.getpid ()))
  in
  let rec rm_rf path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
        Unix.rmdir path
      end
      else Sys.remove path
  in
  rm_rf dir;
  Unix.mkdir dir 0o700;
  let state_dir = Filename.concat dir "state" in
  let backend_socks =
    [ Filename.concat dir "b0.sock"; Filename.concat dir "b1.sock" ]
  in
  let spawn sock =
    Unix.create_process cli
      [|
        cli; "serve"; "--socket"; sock; "-c"; "2"; "-q"; "64"; "-j"; "1";
        "--quiet"; "--state-dir"; state_dir;
      |]
      Unix.stdin Unix.stdout Unix.stderr
  in
  let pids = List.map spawn backend_socks in
  let connect_retry sock =
    let rec go n =
      match Client.connect sock with
      | c -> c
      | exception Unix.Unix_error _ when n > 0 ->
          Thread.delay 0.05;
          go (n - 1)
    in
    go 100
  in
  let gw_sock = Filename.concat dir "gw.sock" in
  let gw =
    Gateway.create
      {
        Gateway.socket_path = Some gw_sock;
        backends = backend_socks;
        vnodes = 64;
        fanout = false;
        log = None;
        handle_signals = false;
        health_interval_s = None;
      }
  in
  let gw_thread = Thread.create Gateway.serve gw in
  let teardown () =
    Gateway.stop gw;
    Thread.join gw_thread;
    List.iter
      (fun pid ->
        (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
        ignore (Unix.waitpid [] pid))
      pids;
    rm_rf dir
  in
  (* exit must happen after Fun.protect returns: Stdlib.exit does not unwind,
     so calling it inside the body would skip teardown and orphan the backends *)
  let bad =
    Fun.protect ~finally:teardown @@ fun () ->
  (* wait for every listener *)
  List.iter
    (fun s -> Client.close (connect_retry s))
    (backend_socks @ [ gw_sock ]);
  let failed = ref false in
  let check name cond =
    Printf.printf "  %-52s %s\n" name (if cond then "ok" else "FAIL");
    if not cond then failed := true
  in
  (* two warm engine keys the ring assigns to different backends, so the
     gateway genuinely spreads the load *)
  let params perf =
    {
      Protocol.default_params with
      benchmark = "ewf";
      partitions = 2;
      perf;
      keep_all = true;
    }
  in
  let ring = Ring.create ~vnodes:64 backend_socks in
  let owner perf =
    match Ring.lookup ring (Ops.engine_key ~op:Protocol.Explore (params perf)) with
    | Some b -> b
    | None -> failwith "bench gateway: empty ring"
  in
  let perf_a = 30000. in
  let perf_b =
    let rec find p =
      if owner p <> owner perf_a then p
      else if p > 60000. then failwith "bench gateway: no second key found"
      else find (p +. 100.)
    in
    find 30100.
  in
  let request ~id ~perf =
    Protocol.request_to_json
      { Protocol.id; op = Protocol.Explore; deadline_ms = None;
        params = params perf }
  in
  let rpc_ok c json =
    match Client.rpc c json with
    | Ok resp ->
        if Protocol.response_ok resp <> Some true then
          failwith "bench gateway: request failed";
        resp
    | Error msg -> failwith ("bench gateway: " ^ msg)
  in
  (* warm both keys everywhere they will be served: on the direct
     baseline backend and (through the gateway) on each key's owner *)
  let b0 = List.hd backend_socks in
  let warm sock =
    let c = connect_retry sock in
    ignore (rpc_ok c (request ~id:"warm-a" ~perf:perf_a));
    ignore (rpc_ok c (request ~id:"warm-b" ~perf:perf_b));
    Client.close c
  in
  warm b0;
  warm gw_sock;
  (* byte-identity through the gateway, measured on the wire *)
  let text_of resp =
    match Protocol.response_text resp with
    | Some t -> t
    | None -> failwith "bench gateway: response has no text"
  in
  let direct = connect_retry b0 and via_gw = connect_retry gw_sock in
  let parity =
    List.for_all
      (fun perf ->
        let id = Printf.sprintf "parity-%.0f" perf in
        String.equal
          (text_of (rpc_ok direct (request ~id ~perf)))
          (text_of (rpc_ok via_gw (request ~id ~perf))))
      [ perf_a; perf_b ]
  in
  Client.close direct;
  Client.close via_gw;
  check "gateway responses byte-identical to a single serve" parity;
  (* throughput: the same concurrent warm load against one backend
     directly, then through the gateway over both *)
  let threads_n = 4 in
  let per_thread = if smoke then 6 else 25 in
  let measure sock =
    let t0 = Unix.gettimeofday () in
    let ts =
      List.init threads_n (fun tid ->
          Thread.create
            (fun () ->
              let c = connect_retry sock in
              for i = 0 to per_thread - 1 do
                let perf = if (tid + i) mod 2 = 0 then perf_a else perf_b in
                ignore
                  (rpc_ok c (request ~id:(Printf.sprintf "t%d-%d" tid i) ~perf))
              done;
              Client.close c)
            ())
    in
    List.iter Thread.join ts;
    let wall = Unix.gettimeofday () -. t0 in
    float_of_int (threads_n * per_thread) /. Float.max 1e-9 wall
  in
  let single_rps = measure b0 in
  let gateway_rps = measure gw_sock in
  let speedup = gateway_rps /. Float.max 1e-9 single_rps in
  let cores = Domain.recommended_domain_count () in
  Printf.printf
    "  %d requests each: single backend %.1f req/s, gateway x2 %.1f req/s \
     (%.2fx)\n"
    (threads_n * per_thread) single_rps gateway_rps speedup;
  if cores >= 4 then
    check "2-backend throughput >= 1.5x single backend" (speedup >= 1.5)
  else
    Printf.printf
      "  speedup %.2fx — >= 1.5x assertion skipped (host has %d core(s), \
       needs >= 4)\n"
      speedup cores;
  (* snapshot durability: a snapshot round-trip preserves the spec's
     canonical construction order, so a reopened session raw-hits its own
     pre-save entries.  To show the restored run is served by the
     content-addressed keys — structural hits — the entries must come from
     a DIFFERENT construction: warm the owner with an ewf session first,
     then run the snapshot session on ewf2 (the same structure with
     shuffled node ids).  Every ewf2 prediction, before the save and after
     the restore, must then be a structural hit with zero raw misses *)
  let c = connect_retry gw_sock in
  let session_req ~id ~op ~benchmark ?(sid = "") ?(edits = [])
      ?(close = false) ?(restore = false) () =
    Protocol.request_to_json
      {
        Protocol.id;
        op;
        deadline_ms = None;
        params =
          {
            Protocol.default_params with
            benchmark;
            partitions = 3;
            session = sid;
            client = "bench";
            edits;
            close;
            restore;
          };
      }
  in
  (* both sessions must land on the same backend: sessions route by sid,
     so pick sid strings the ring assigns to one chosen owner *)
  let target = List.hd backend_socks in
  let sid_owned_by prefix =
    let rec go i =
      if i > 1000 then failwith "bench gateway: ring never chose the target"
      else
        let s = Printf.sprintf "%s%d" prefix i in
        if Ring.lookup ring s = Some target then s else go (i + 1)
    in
    go 0
  in
  let sid_warm = sid_owned_by "bench-warm-" in
  let sid = sid_owned_by "bench-snap-" in
  let timing_counters resp =
    let field name =
      Option.bind
        (Option.bind (Json.member "timing" resp) (Json.member name))
        Json.to_int_opt
    in
    match (field "cache_misses", field "cache_structural_hits") with
    | Some m, Some s -> (m, s)
    | _ -> failwith "bench gateway: timing counters missing"
  in
  let ewf = "ewf" and ewf2 = "ewf2" in
  ignore
    (rpc_ok c
       (session_req ~id:"wo" ~op:Protocol.Session_open ~benchmark:ewf
          ~sid:sid_warm ()));
  ignore
    (rpc_ok c
       (session_req ~id:"we" ~op:Protocol.Session_edit ~benchmark:ewf
          ~sid:sid_warm ~edits:[ "merge P3 P2" ] ()));
  let cold_misses, _ =
    timing_counters
      (rpc_ok c
         (session_req ~id:"wr" ~op:Protocol.Session_run ~benchmark:ewf
            ~sid:sid_warm ()))
  in
  check "first construction predicts cold (raw misses)" (cold_misses >= 1);
  ignore
    (rpc_ok c
       (session_req ~id:"wc" ~op:Protocol.Session_close ~benchmark:ewf
          ~sid:sid_warm ()));
  ignore
    (rpc_ok c (session_req ~id:"o" ~op:Protocol.Session_open ~benchmark:ewf2 ~sid ()));
  ignore
    (rpc_ok c
       (session_req ~id:"e" ~op:Protocol.Session_edit ~benchmark:ewf2 ~sid
          ~edits:[ "merge P3 P2" ] ()));
  let pre_misses, pre_structural =
    timing_counters
      (rpc_ok c (session_req ~id:"r1" ~op:Protocol.Session_run ~benchmark:ewf2 ~sid ()))
  in
  check "second construction misses nothing" (pre_misses = 0);
  check "second construction served by structural hits" (pre_structural > 0);
  ignore
    (rpc_ok c
       (session_req ~id:"s" ~op:Protocol.Session_save ~benchmark:ewf2 ~sid
          ~close:true ()));
  ignore
    (rpc_ok c
       (session_req ~id:"o2" ~op:Protocol.Session_open ~benchmark:ewf2 ~sid
          ~restore:true ()));
  let reopen_misses, reopen_structural =
    timing_counters
      (rpc_ok c (session_req ~id:"r2" ~op:Protocol.Session_run ~benchmark:ewf2 ~sid ()))
  in
  check "restored run misses nothing (raw)" (reopen_misses = 0);
  check "restored run served by structural hits" (reopen_structural > 0);
  ignore
    (rpc_ok c (session_req ~id:"c" ~op:Protocol.Session_close ~benchmark:ewf2 ~sid ()));
  Client.close c;
  Printf.printf
    "  restore: ewf cold misses %d, ewf2 structural hits %d, reopened \
     misses %d, reopened structural hits %d\n"
    cold_misses pre_structural reopen_misses reopen_structural;
  let oc = open_out "BENCH_gateway.json" in
  Printf.fprintf oc
    "{\n\
    \  \"host_cores\": %d,\n\
    \  \"mode\": \"%s\",\n\
    \  \"backends\": %d,\n\
    \  \"client_threads\": %d,\n\
    \  \"requests_per_mode\": %d,\n\
    \  \"single_backend_rps\": %.1f,\n\
    \  \"gateway_rps\": %.1f,\n\
    \  \"speedup\": %.2f,\n\
    \  \"speedup_asserted\": %b,\n\
    \  \"parity\": %b,\n\
    \  \"restore\": {\"cold_misses\": %d, \"second_construction_structural_hits\": %d, \
     \"reopen_misses\": %d, \"reopen_structural_hits\": %d}\n\
     }\n"
    cores
    (if smoke then "smoke" else "full")
    (List.length backend_socks)
    threads_n (threads_n * per_thread) single_rps gateway_rps speedup
    (cores >= 4) parity cold_misses pre_structural reopen_misses
    reopen_structural;
  close_out oc;
  print_endline "  wrote BENCH_gateway.json";
  !failed
  in
  if bad then begin
    prerr_endline "bench gateway: acceptance criteria violated";
    exit 1
  end

let () =
  if Array.exists (fun a -> a = "gateway") Sys.argv then begin
    bench_gateway_json ~smoke:(Array.exists (fun a -> a = "--smoke") Sys.argv) ();
    exit 0
  end;
  if Array.exists (fun a -> a = "hwsw") Sys.argv then begin
    ablation_hwsw_codesign ();
    exit 0
  end;
  if Array.exists (fun a -> a = "auto") Sys.argv then begin
    bench_auto_json ~smoke:(Array.exists (fun a -> a = "--smoke") Sys.argv) ();
    exit 0
  end;
  if Array.exists (fun a -> a = "session") Sys.argv then begin
    bench_session_json ~smoke:(Array.exists (fun a -> a = "--smoke") Sys.argv) ();
    exit 0
  end;
  if Array.exists (fun a -> a = "serve") Sys.argv then begin
    bench_serve_json ~smoke:(Array.exists (fun a -> a = "--smoke") Sys.argv) ();
    exit 0
  end;
  if Array.exists (fun a -> a = "--explore-json-only") Sys.argv then begin
    bench_explore_json ();
    exit 0
  end;
  if Array.exists (fun a -> a = "--smoke") Sys.argv then begin
    (* CI smoke: the cheap EWF benchmark only, nothing written to disk *)
    bench_explore_json ~smoke:true ();
    exit 0
  end;
  print_endline
    "CHOP reproduction benches — Kucukcakar & Parker, DAC 1991\n\
     Workload: AR lattice filter element (Figure 6), 28 operations.";
  print_inputs ();

  section "Table 3: statistics on the results from BAD (experiment 1)";
  bad_statistics ~title:"single-cycle style, 30 000 ns constraints" (fun k ->
      Chop.Rig.experiment1 ~partitions:k ());

  section "Table 4: results of experiment 1";
  search_results ~title:"single-cycle, data-path clock 10x main"
    ~rows:
      [
        (1, "2", Chop_tech.Mosis.package_84);
        (2, "2", Chop_tech.Mosis.package_84);
        (2, "1", Chop_tech.Mosis.package_64);
        (3, "2", Chop_tech.Mosis.package_84);
      ]
    (fun k package -> Chop.Rig.experiment1 ~package ~partitions:k ());

  design_space
    ~title:
      "Figure 7: designs considered during experiment 1 (no pruning; 1- and \
       2-partition searches — the unpruned 3-partition product exceeds 4.5M \
       integrations, the same blow-up that cost the paper its swap space in \
       experiment 2)"
    ~partition_counts:[ 1; 2 ]
    (fun k -> Chop.Rig.experiment1 ~partitions:k ());

  section "Table 5: statistics on the results from BAD (experiment 2)";
  bad_statistics ~title:"multi-cycle style, 20 000 ns performance constraint"
    (fun k -> Chop.Rig.experiment2 ~partitions:k ());

  section "Table 6: results of experiment 2";
  search_results ~title:"multi-cycle, both clocks at main speed"
    ~rows:
      [
        (1, "2", Chop_tech.Mosis.package_84);
        (2, "2", Chop_tech.Mosis.package_84);
        (3, "2", Chop_tech.Mosis.package_84);
      ]
    (fun k package -> Chop.Rig.experiment2 ~package ~partitions:k ());

  design_space
    ~title:
      "Figure 8: designs considered during experiment 2 (no pruning, \
       1-partition case only — the paper hit swap-space limits beyond that)"
    ~partition_counts:[ 1 ]
    (fun k -> Chop.Rig.experiment2 ~partitions:k ());

  ablation_pruning ();
  ablation_testability ();
  ablation_power ();
  ablation_pin_sensitivity ();
  ablation_technology_scaling ();
  ablation_cost ();
  ablation_chaining ();
  ablation_transformations ();
  ablation_packing ();
  ablation_heuristics ();
  ablation_scheduler ();
  ablation_prediction_accuracy ();
  ablation_system_simulation ();
  ablation_chip_level_synthesis ();
  ablation_baseline ();
  ablation_hwsw_codesign ();
  secondary_workload ();
  bench_explore_json ();
  scale_check ();
  microbenchmarks ();
  print_endline "\nDone.  See EXPERIMENTS.md for paper-vs-measured commentary."
