(* The paper's own workload: explore single-chip vs multi-chip
   implementations of the AR lattice filter element (Figure 6) under the
   experiment-1 conditions, with both search heuristics.

   Run with:  dune exec examples/ar_filter_explore.exe *)

open Chop_util

let explore k heuristic =
  let spec = Chop.Rig.experiment1 ~partitions:k () in
  let engine =
    Chop.Explore.Engine.create (Chop.Explore.Config.make ~heuristic ()) spec
  in
  (spec, Chop.Explore.Engine.run engine)

let () =
  print_endline "AR lattice filter, single-cycle style, 30 000 ns constraints";
  print_endline "(the paper's experiment 1, Tables 3 and 4)\n";
  let table =
    Texttable.create
      ~title:"Feasible non-inferior designs per partition count"
      [
        ("Partitions", Texttable.Right); ("Heuristic", Texttable.Center);
        ("Trials", Texttable.Right); ("Feasible", Texttable.Right);
        ("Best II", Texttable.Right); ("Delay", Texttable.Right);
        ("Clock ns", Texttable.Right); ("CPU s", Texttable.Right);
      ]
  in
  List.iter
    (fun k ->
      List.iter
        (fun h ->
          let _, report = explore k h in
          let st = report.Chop.Explore.outcome.Chop.Search.stats in
          let best = report.Chop.Explore.outcome.Chop.Search.feasible in
          let cells =
            match best with
            | [] -> [ "-"; "-"; "-" ]
            | s :: _ ->
                [
                  string_of_int s.Chop.Integration.ii_main;
                  string_of_int s.Chop.Integration.delay_cycles;
                  Printf.sprintf "%.0f" s.Chop.Integration.clock;
                ]
          in
          Texttable.add_row table
            ([
               string_of_int k;
               Format.asprintf "%a" Chop.Explore.pp_heuristic h;
               string_of_int st.Chop.Search.implementation_trials;
               string_of_int (List.length best);
             ]
            @ cells
            @ [ Printf.sprintf "%.3f" st.Chop.Search.cpu_seconds ]))
        [ Chop.Explore.Enumeration; Chop.Explore.Iterative ];
      Texttable.add_separator table)
    [ 1; 2; 3 ];
  Texttable.print table;

  (* The headline result: doubling the chips roughly doubles performance. *)
  let best_perf k =
    let _, report = explore k Chop.Explore.Iterative in
    match report.Chop.Explore.outcome.Chop.Search.feasible with
    | s :: _ -> s.Chop.Integration.perf_ns
    | [] -> infinity
  in
  let p1 = best_perf 1 and p2 = best_perf 2 in
  Printf.printf
    "\nSingle chip sustains one result every %.0f ns; two chips every %.0f ns \
     (%.1fx speedup from partitioning).\n"
    p1 p2 (p1 /. p2);

  (* Guideline for the best two-chip design, as in the paper's section 3.1 *)
  let spec, report = explore 2 Chop.Explore.Iterative in
  match report.Chop.Explore.outcome.Chop.Search.feasible with
  | [] -> ()
  | best :: _ ->
      print_endline "\nDesigner guideline for the best 2-chip implementation:\n";
      print_string (Chop.Report.guideline spec best);
      print_endline "\nSystem timeline (main-clock cycles):\n";
      print_string (Chop.Report.timeline best)
