(* A memory-bound design: a loop kernel streaming through two memory
   blocks, unrolled per the paper's restriction (section 2.3: inner loops
   with determinate counts are unrolled so the DFG is acyclic), then
   partitioned with the memories assigned to chips (input group 4).

   Compares an on-chip memory hierarchy against off-the-shelf memory chips
   ("the use of off-the-shelf memory chips is allowed by CHOP", section 2.4).

   Run with:  dune exec examples/memory_system.exe *)

open Chop_util

(* loop body: acc' = acc + k * mem_A[..]; store to B each iteration *)
let kernel_body () =
  let b = Chop_dfg.Graph.builder ~name:"mac_body" () in
  let acc_in = Chop_dfg.Graph.add_node b ~name:"acc_in" ~op:Chop_dfg.Op.Input ~width:16 in
  let k = Chop_dfg.Graph.add_node b ~name:"k" ~op:Chop_dfg.Op.Const ~width:16 in
  let load = Chop_dfg.Graph.add_node b ~name:"load" ~op:(Chop_dfg.Op.Mem_read "A") ~width:16 in
  let mul = Chop_dfg.Graph.add_node b ~name:"mul" ~op:Chop_dfg.Op.Mult ~width:16 in
  let add = Chop_dfg.Graph.add_node b ~name:"add" ~op:Chop_dfg.Op.Add ~width:16 in
  let store = Chop_dfg.Graph.add_node b ~name:"store" ~op:(Chop_dfg.Op.Mem_write "B") ~width:16 in
  let acc_out = Chop_dfg.Graph.add_node b ~name:"acc_out" ~op:Chop_dfg.Op.Output ~width:16 in
  Chop_dfg.Graph.add_edge b ~src:k ~dst:mul;
  Chop_dfg.Graph.add_edge b ~src:load ~dst:mul;
  Chop_dfg.Graph.add_edge b ~src:acc_in ~dst:add;
  Chop_dfg.Graph.add_edge b ~src:mul ~dst:add;
  Chop_dfg.Graph.add_edge b ~src:add ~dst:store;
  Chop_dfg.Graph.add_edge b ~src:add ~dst:acc_out;
  Chop_dfg.Graph.build b

let memory ~ports ~placement name =
  Chop_tech.Memory.make ~name ~words:256 ~word_width:16 ~ports ~access:150.
    ~placement

let spec_with ~ports ~on_chip =
  let body = kernel_body () in
  let graph =
    Chop_dfg.Transform.unroll
      { Chop_dfg.Transform.body; trip_count = 4; carried = [ ("acc_out", "acc_in") ] }
  in
  let partitioning = Chop_dfg.Partition.whole graph in
  let placement_a, host_a =
    if on_chip then (Chop_tech.Memory.On_chip 6000., [ ("A", "chip1") ])
    else (Chop_tech.Memory.Off_chip_package 28, [])
  in
  let placement_b, host_b =
    if on_chip then (Chop_tech.Memory.On_chip 6000., [ ("B", "chip1") ])
    else (Chop_tech.Memory.Off_chip_package 28, [])
  in
  Chop.Rig.custom
    ~memories:[ memory ~ports ~placement:placement_a "A";
                memory ~ports ~placement:placement_b "B" ]
    ~memory_hosts:(host_a @ host_b) ~graph ~partitioning
    ~package:Chop_tech.Mosis.package_84
    ~clocks:(Chop_tech.Clocking.make ~main:300. ~datapath_ratio:1 ~transfer_ratio:1)
    ~style:(Chop_tech.Style.both Chop_tech.Style.Multi_cycle)
    ~criteria:(Chop_bad.Feasibility.criteria ~perf:60000. ~delay:60000. ())
    ()

let () =
  print_endline "Unrolled multiply-accumulate kernel over memory blocks A/B\n";
  let table =
    Texttable.create
      [
        ("Memory", Texttable.Center); ("Ports", Texttable.Right);
        ("Feasible", Texttable.Right); ("Best II", Texttable.Right);
        ("Delay cycles", Texttable.Right); ("Signal pins", Texttable.Right);
      ]
  in
  List.iter
    (fun on_chip ->
      List.iter
        (fun ports ->
          let spec = spec_with ~ports ~on_chip in
          let report =
            Chop.Explore.Engine.run
              (Chop.Explore.Engine.create
                 (Chop.Explore.Config.make
                    ~heuristic:Chop.Explore.Enumeration ())
                 spec)
          in
          let feas = report.Chop.Explore.outcome.Chop.Search.feasible in
          let cells =
            match feas with
            | [] -> [ "-"; "-"; "-" ]
            | s :: _ ->
                [
                  string_of_int s.Chop.Integration.ii_main;
                  string_of_int s.Chop.Integration.delay_cycles;
                  String.concat "/"
                    (List.map
                       (fun cr -> string_of_int cr.Chop.Integration.signal_pins)
                       s.Chop.Integration.chip_reports);
                ]
          in
          Texttable.add_row table
            ([
               (if on_chip then "on-chip" else "off-the-shelf");
               string_of_int ports;
               string_of_int (List.length feas);
             ]
            @ cells))
        [ 1; 2 ];
      Texttable.add_separator table)
    [ true; false ];
  Texttable.print table;
  print_endline
    "\nOff-the-shelf memory chips free die area but burn the accessing\n\
     chip's pins on the memory bus; a second port raises the deliverable\n\
     memory bandwidth and unlocks faster initiation intervals."
