(* The paper's core methodological argument (section 1.1): classic
   Kernighan-Lin min-cut partitioning [4] optimizes cut bits, but "it is
   questionable if one can directly correlate 'sum of costs of values cut'
   to the pin count requirement or 'sum of sizes of operations in a
   partition' to the area of chips".  This example partitions the AR
   filter with KL and with horizontal level cuts, then lets CHOP judge
   both.

   Run with:  dune exec examples/kl_vs_chop.exe *)

open Chop_util

let judge pg =
  let g = pg.Chop_dfg.Partition.graph in
  if List.length pg.Chop_dfg.Partition.parts < 2 then None
  else
    let spec =
      Chop.Rig.custom ~graph:g ~partitioning:pg
        ~package:Chop_tech.Mosis.package_84
        ~clocks:
          (Chop_tech.Clocking.make ~main:300. ~datapath_ratio:10 ~transfer_ratio:1)
        ~style:(Chop_tech.Style.both Chop_tech.Style.Single_cycle)
        ~criteria:(Chop_bad.Feasibility.criteria ~perf:30000. ~delay:30000. ())
        ()
    in
    let report =
      Chop.Explore.Engine.run
        (Chop.Explore.Engine.create Chop.Explore.Config.default spec)
    in
    Some report.Chop.Explore.outcome.Chop.Search.feasible

let () =
  let g = Chop_dfg.Benchmarks.ar_lattice_filter () in
  print_endline "AR filter bipartitioned two ways, judged by CHOP:\n";
  let table =
    Texttable.create
      [
        ("Strategy", Texttable.Left); ("Cut bits", Texttable.Right);
        ("Part sizes", Texttable.Center); ("CHOP verdict", Texttable.Left);
      ]
  in
  List.iter
    (fun strategy ->
      let pg = Chop_baseline.Autopart.generate g ~k:2 strategy in
      let cut = Chop_dfg.Partition.cut_bits_total pg in
      let sizes =
        List.map
          (fun p -> string_of_int (List.length p.Chop_dfg.Partition.members))
          pg.Chop_dfg.Partition.parts
        |> String.concat "+"
      in
      let verdict =
        match judge pg with
        | None -> "degenerate (KL legalization merged the sides)"
        | Some [] -> "infeasible under the 30 000 ns constraints"
        | Some (best :: _) ->
            Printf.sprintf "feasible: II %d, delay %d cycles"
              best.Chop.Integration.ii_main best.Chop.Integration.delay_cycles
      in
      Texttable.add_row table
        [ Chop_baseline.Autopart.strategy_name strategy; string_of_int cut;
          sizes; verdict ])
    [ Chop_baseline.Autopart.Levels; Chop_baseline.Autopart.Min_cut 1;
      Chop_baseline.Autopart.Random_balanced 42 ];
  Texttable.print table;
  print_endline
    "\nMin-cut can beat the level cut on cut bits yet produce unbalanced or\n\
     rate-incompatible partitions; CHOP's feasibility analysis — areas,\n\
     rates, pins, buffers — is the judgement that matters for multi-chip\n\
     behavioral design."
