(* From prediction to structure: take the best feasible 2-chip AR filter
   implementation CHOP finds, rebuild the schedule each partition
   prediction describes, bind it onto functional units and a left-edge
   register file, and emit the resulting netlists — the paper's "immediate
   task is to synthesize ... some partitioned designs" (section 5).

   Run with:  dune exec examples/synthesize_partition.exe *)

let () =
  let spec = Chop.Rig.experiment1 ~partitions:2 () in
  let report =
    Chop.Explore.Engine.run
      (Chop.Explore.Engine.create Chop.Explore.Config.default spec)
  in
  match report.Chop.Explore.outcome.Chop.Search.feasible with
  | [] -> print_endline "no feasible implementation to synthesize"
  | best :: _ ->
      Printf.printf
        "synthesizing the II=%d, delay=%d implementation partition by \
         partition\n\n"
        best.Chop.Integration.ii_main best.Chop.Integration.delay_cycles;
      List.iter
        (fun (label, p) ->
          let part = Chop_dfg.Partition.find spec.Chop.Spec.partitioning label in
          let sub = Chop_dfg.Partition.subgraph spec.Chop.Spec.partitioning part in
          let cfg = Chop.Explore.predictor_config spec ~label in
          let latency =
            Chop_bad.Predictor.latency_function cfg
              ~module_set:p.Chop_bad.Prediction.module_set
          in
          let sched =
            Chop_sched.List_sched.run ~latency ~alloc:p.Chop_bad.Prediction.alloc
              sub
          in
          let netlist =
            Chop_rtl.Synth.netlist ~name:label
              ~module_set:p.Chop_bad.Prediction.module_set sched
          in
          Format.printf "%a@." Chop_rtl.Netlist.pp netlist;
          Printf.printf "  predicted registers: %d bits, actual: %d bits\n"
            p.Chop_bad.Prediction.register_bits
            (Chop_rtl.Netlist.register_bits netlist);
          Printf.printf "  predicted muxes: %d bits, actual: %d bits\n"
            p.Chop_bad.Prediction.mux_count
            (Chop_rtl.Netlist.mux_bits netlist);
          Printf.printf "  predicted area: %s, actual cells: %.0f mil^2\n\n"
            (Chop_util.Triplet.to_string p.Chop_bad.Prediction.area)
            (Chop_rtl.Netlist.cell_area netlist);
          ignore best)
        best.Chop.Integration.combination;
      (* full Verilog dump of the first partition *)
      let label, p = List.hd best.Chop.Integration.combination in
      let part = Chop_dfg.Partition.find spec.Chop.Spec.partitioning label in
      let sub = Chop_dfg.Partition.subgraph spec.Chop.Spec.partitioning part in
      let cfg = Chop.Explore.predictor_config spec ~label in
      let latency =
        Chop_bad.Predictor.latency_function cfg
          ~module_set:p.Chop_bad.Prediction.module_set
      in
      let sched =
        Chop_sched.List_sched.run ~latency ~alloc:p.Chop_bad.Prediction.alloc sub
      in
      let netlist =
        Chop_rtl.Synth.netlist ~name:label
          ~module_set:p.Chop_bad.Prediction.module_set sched
      in
      print_endline "Verilog rendering of the first partition:\n";
      print_string (Chop_rtl.Verilog.emit netlist);
      (* and lay it out on the MOSIS die (the paper's "synthesize and
         layout") *)
      print_endline "\nfloorplan on the 84-pin MOSIS die:\n";
      (match Chop_rtl.Floorplan.on_package Chop_tech.Mosis.package_84 netlist with
      | Ok fp -> Format.printf "%a@." Chop_rtl.Floorplan.pp fp
      | Error e -> Printf.printf "does not fit: %s\n" e);
      (* and the complete multi-chip artifact *)
      let ctx = Chop.Integration.context spec in
      let sys = Chop_rtl.System.synthesize ctx best in
      print_endline "\nchip-level summary:\n";
      print_string (Chop_rtl.System.summary sys);
      print_endline "\nboard-level top module:\n";
      print_string (Chop_rtl.System.board_verilog ctx best sys)
