(* Partition the fifth-order elliptic wave filter (the other canonical
   ADAM-era benchmark) onto one to three chips, comparing the 64-pin and
   84-pin MOSIS packages — the "target chip set" modification group of the
   paper's section 2.7.

   Run with:  dune exec examples/ewf_multichip.exe *)

open Chop_util

let spec_for ~k ~package =
  let graph = Chop_dfg.Benchmarks.elliptic_wave_filter () in
  let partitioning =
    if k = 1 then Chop_dfg.Partition.whole graph
    else Chop_dfg.Partition.by_levels graph ~k
  in
  Chop.Rig.custom ~graph ~partitioning ~package
    ~clocks:(Chop_tech.Clocking.make ~main:300. ~datapath_ratio:1 ~transfer_ratio:1)
    ~style:(Chop_tech.Style.both Chop_tech.Style.Multi_cycle)
    ~criteria:(Chop_bad.Feasibility.criteria ~perf:20000. ~delay:20000. ())
    ()

let () =
  print_endline "Elliptic wave filter (26 add, 8 mult) on 1-3 chips\n";
  let table =
    Texttable.create
      [
        ("Chips", Texttable.Right); ("Package", Texttable.Center);
        ("Feasible", Texttable.Right); ("Best II", Texttable.Right);
        ("Delay cycles", Texttable.Right); ("Clock ns", Texttable.Right);
        ("Pins/chip used", Texttable.Right);
      ]
  in
  List.iter
    (fun k ->
      List.iter
        (fun (pname, package) ->
          let spec = spec_for ~k ~package in
          let report =
            Chop.Explore.Engine.run
              (Chop.Explore.Engine.create Chop.Explore.Config.default spec)
          in
          let feas = report.Chop.Explore.outcome.Chop.Search.feasible in
          let cells =
            match feas with
            | [] -> [ "-"; "-"; "-"; "-" ]
            | s :: _ ->
                let pins =
                  List.map
                    (fun cr -> string_of_int cr.Chop.Integration.signal_pins)
                    s.Chop.Integration.chip_reports
                  |> String.concat "/"
                in
                [
                  string_of_int s.Chop.Integration.ii_main;
                  string_of_int s.Chop.Integration.delay_cycles;
                  Printf.sprintf "%.0f" s.Chop.Integration.clock;
                  pins;
                ]
          in
          Texttable.add_row table
            ([ string_of_int k; pname; string_of_int (List.length feas) ] @ cells))
        [ ("pkg64", Chop_tech.Mosis.package_64); ("pkg84", Chop_tech.Mosis.package_84) ];
      Texttable.add_separator table)
    [ 1; 2; 3 ];
  Texttable.print table;
  print_endline
    "\nThe EWF is addition-dominated: cheap adders keep every chip small, so\n\
     the partitioning is pin-limited rather than area-limited — exactly the\n\
     regime where the paper's integration predictions matter."
