(* Quickstart: partition the HAL differential-equation kernel onto two
   MOSIS chips and ask CHOP whether the design is feasible.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* 1. The behavioral specification: a data-flow graph. *)
  let graph = Chop_dfg.Benchmarks.diffeq () in
  Format.printf "%a@." Chop_dfg.Graph.pp graph;

  (* 2. Partition it: two horizontal cuts of the level structure. *)
  let partitioning = Chop_dfg.Partition.by_levels graph ~k:2 in
  Format.printf "%a@." Chop_dfg.Partition.pp partitioning;

  (* 3. Describe the implementation technology and constraints:
     Table 1's 3u library, one 84-pin MOSIS package per partition, a 300 ns
     main clock with multi-cycle operations, and 25 us performance/delay
     budgets at the paper's feasibility probabilities. *)
  let spec =
    Chop.Rig.custom ~graph ~partitioning ~package:Chop_tech.Mosis.package_84
      ~clocks:
        (Chop_tech.Clocking.make ~main:300. ~datapath_ratio:1 ~transfer_ratio:1)
      ~style:(Chop_tech.Style.both Chop_tech.Style.Multi_cycle)
      ~criteria:(Chop_bad.Feasibility.criteria ~perf:25000. ~delay:25000. ())
      ()
  in

  (* 4. Explore: create an engine session (heuristic, parallelism and
     prediction caching live in the config), then run it.  BAD predicts
     implementations per partition; CHOP searches combinations and predicts
     system-integration overhead. *)
  let config = Chop.Explore.Config.make ~heuristic:Chop.Explore.Iterative () in
  let engine = Chop.Explore.Engine.create config spec in
  let report = Chop.Explore.Engine.run engine in
  List.iter
    (fun b ->
      Printf.printf "BAD %s: %d predictions, %d feasible, %d kept\n"
        b.Chop.Explore.label b.Chop.Explore.total_predictions
        b.Chop.Explore.feasible_predictions b.Chop.Explore.kept)
    report.Chop.Explore.bad;

  (* 5. Read the verdicts: each feasible global implementation comes with
     full designer guidelines. *)
  match report.Chop.Explore.outcome.Chop.Search.feasible with
  | [] -> print_endline "No feasible implementation under these constraints."
  | best :: _ ->
      Printf.printf "\n%d feasible non-inferior implementation(s); best:\n\n"
        (List.length report.Chop.Explore.outcome.Chop.Search.feasible);
      print_string (Chop.Report.guideline spec best)
