(* Reconstruction of the paper's Figure 2 example partitioning: five
   partitions (P1-P5) and two memory units (M_A on-chip, M_B off-the-shelf)
   as a four-chip design.  Chip 4 carries two partitions (P4 and P5), and
   the data flow among *chips* is cyclic (chip4 -> chip3 -> chip4) even
   though the partition quotient graph is acyclic — exactly the situation
   section 2.3 allows.

   Run with:  dune exec examples/figure2_system.exe *)

let graph () =
  (* a five-stage behavioral spec shaped like Figure 3's task graph:
       P1 -> P2 -> P4 -> P3 -> P5
       P1 -> P3, P2 accesses M_A, P4 accesses M_B *)
  let b = Chop_dfg.Graph.builder ~name:"figure2" () in
  let width = 16 in
  let input name = Chop_dfg.Graph.add_node b ~name ~op:Chop_dfg.Op.Input ~width in
  let const name = Chop_dfg.Graph.add_node b ~name ~op:Chop_dfg.Op.Const ~width in
  let output name v =
    let o = Chop_dfg.Graph.add_node b ~name ~op:Chop_dfg.Op.Output ~width in
    Chop_dfg.Graph.add_edge b ~src:v ~dst:o
  in
  let binop op name x y =
    let n = Chop_dfg.Graph.add_node b ~name ~op ~width in
    Chop_dfg.Graph.add_edge b ~src:x ~dst:n;
    Chop_dfg.Graph.add_edge b ~src:y ~dst:n;
    n
  in
  let unop op name x =
    let n = Chop_dfg.Graph.add_node b ~name ~op ~width in
    Chop_dfg.Graph.add_edge b ~src:x ~dst:n;
    n
  in
  let x = input "x" and y = input "y" in
  let c1 = const "c1" and c2 = const "c2" in
  (* P1: front-end scaling *)
  let p1_m = binop Chop_dfg.Op.Mult "p1_m" x c1 in
  let p1_a = binop Chop_dfg.Op.Add "p1_a" p1_m y in
  (* P2: accumulation against table M_A *)
  let p2_r = Chop_dfg.Graph.add_node b ~name:"p2_r" ~op:(Chop_dfg.Op.Mem_read "M_A") ~width in
  let p2_m = binop Chop_dfg.Op.Mult "p2_m" p1_a p2_r in
  let p2_a = binop Chop_dfg.Op.Add "p2_a" p2_m c2 in
  (* P4: writes the stream buffer M_B *)
  let p4_m = binop Chop_dfg.Op.Mult "p4_m" p2_a p2_a in
  let p4_w = unop (Chop_dfg.Op.Mem_write "M_B") "p4_w" p4_m in
  ignore p4_w;
  let p4_s = binop Chop_dfg.Op.Sub "p4_s" p4_m p1_a in
  (* P3: combines P1 and P4 results *)
  let p3_a = binop Chop_dfg.Op.Add "p3_a" p1_a p4_s in
  let p3_m = binop Chop_dfg.Op.Mult "p3_m" p3_a c1 in
  (* P5: back-end on chip 4 *)
  let p5_a = binop Chop_dfg.Op.Add "p5_a" p3_m p4_s in
  let p5_s = unop Chop_dfg.Op.Shift "p5_s" p5_a in
  output "out" p5_s;
  let g = Chop_dfg.Graph.build b in
  let part label members = Chop_dfg.Partition.make ~label members in
  let pg =
    Chop_dfg.Partition.partitioning g
      [
        part "P1" [ p1_m; p1_a ];
        part "P2" [ p2_r; p2_m; p2_a ];
        part "P3" [ p3_a; p3_m ];
        part "P4" [ p4_m; p4_w; p4_s ];
        part "P5" [ p5_a; p5_s ];
      ]
  in
  (g, pg)

let () =
  let g, pg = graph () in
  (* chips: P1|chip1, P2|chip2, P3|chip3, P4+P5|chip4 — data flows
     chip4 (P4) -> chip3 (P3) -> chip4 (P5): a cycle among chips. *)
  let package = Chop_tech.Mosis.package_84 in
  let chips =
    List.map
      (fun i -> { Chop.Spec.chip_name = Printf.sprintf "chip%d" i; package })
      [ 1; 2; 3; 4 ]
  in
  let assignment =
    [ ("P1", "chip1"); ("P2", "chip2"); ("P3", "chip3"); ("P4", "chip4");
      ("P5", "chip4") ]
  in
  let m_a =
    Chop_tech.Memory.make ~name:"M_A" ~words:128 ~word_width:16 ~ports:1
      ~access:120. ~placement:(Chop_tech.Memory.On_chip 5000.)
  in
  let m_b =
    Chop_tech.Memory.make ~name:"M_B" ~words:1024 ~word_width:16 ~ports:1
      ~access:200. ~placement:(Chop_tech.Memory.Off_chip_package 28)
  in
  (* Table 1 has no shifter: the designer extends the library (section 2.2,
     "a library of components") with a 3u barrel-shifter cell *)
  let library =
    Chop_tech.Component.make ~name:"shift1" ~cls:"shift" ~width:16 ~area:900.
      ~delay:40. ()
    :: Chop_tech.Mosis.experiment_library
  in
  let spec =
    Chop.Spec.make
      ~memories:[ m_a; m_b ]
      ~memory_hosts:[ ("M_A", "chip2") ]
      ~graph:g ~library:library ~chips
      ~partitioning:pg ~assignment
      ~clocks:(Chop_tech.Clocking.make ~main:300. ~datapath_ratio:1 ~transfer_ratio:1)
      ~style:(Chop_tech.Style.both Chop_tech.Style.Multi_cycle)
      ~criteria:(Chop_bad.Feasibility.criteria ~perf:40000. ~delay:40000. ())
      ()
  in
  print_endline "Figure 2 reconstruction: 5 partitions, 4 chips, 2 memories\n";
  let ctx = Chop.Integration.context spec in
  print_endline "data-transfer tasks created by CHOP (Figure 3's task graph):";
  List.iter
    (fun t -> Format.printf "  %a@." Chop.Transfer.pp t)
    (Chop.Integration.tasks_of ctx);
  (* the chip-level flow is cyclic; show it *)
  let chip_edges =
    List.filter_map
      (fun t ->
        match (t.Chop.Transfer.src_chip, t.Chop.Transfer.dst_chip) with
        | Some a, Some b when a <> b -> Some (a, b)
        | _ -> None)
      (Chop.Integration.tasks_of ctx)
    |> List.sort_uniq Stdlib.compare
  in
  print_endline "\ninter-chip flows (note chip4 -> chip3 and chip3 -> chip4):";
  List.iter (fun (a, b) -> Printf.printf "  %s -> %s\n" a b) chip_edges;
  let report =
    Chop.Explore.Engine.run
      (Chop.Explore.Engine.create Chop.Explore.Config.default spec)
  in
  match report.Chop.Explore.outcome.Chop.Search.feasible with
  | [] -> print_endline "\nno feasible implementation under these constraints"
  | best :: _ ->
      Printf.printf "\nbest feasible implementation:\n\n%s"
        (Chop.Report.guideline spec best)
