(* Tests for the CHOP core: specification validation, data-transfer task
   creation, system integration, the two search heuristics, the exploration
   driver, reports and the advisor. *)

open Chop

(* one-shot helpers over a fresh session — the pre-engine
   [Explore.run]/[Explore.predictions] wrappers are gone *)
let explore_run ?keep_all heuristic spec =
  Explore.with_engine
    (Explore.Config.make ~heuristic ?keep_all ())
    spec Explore.Engine.run

let explore_predictions ?prune spec =
  Explore.with_engine
    (Explore.Config.make ?prune ())
    spec Explore.Engine.predictions

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let exp1 k = Rig.experiment1 ~partitions:k ()
let exp2 k = Rig.experiment2 ~partitions:k ()

let first_feasible spec =
  let report = explore_run Explore.Iterative spec in
  match report.Explore.outcome.Search.feasible with
  | s :: _ -> s
  | [] -> Alcotest.fail "expected a feasible system"

(* a spec with two chips and an on-chip memory, exercising memory paths *)
let memory_spec () =
  let g = Chop_dfg.Benchmarks.memory_pipeline ~blocks:("A", "B") () in
  let pg = Chop_dfg.Partition.whole g in
  let mem name =
    Chop_tech.Memory.make ~name ~words:64 ~word_width:16 ~ports:1 ~access:120.
      ~placement:(Chop_tech.Memory.On_chip 4000.)
  in
  Spec.make
    ~memories:[ mem "A"; mem "B" ]
    ~memory_hosts:[ ("A", "chip1"); ("B", "chip1") ]
    ~graph:g ~library:Chop_tech.Mosis.experiment_library
    ~chips:[ { Spec.chip_name = "chip1"; package = Chop_tech.Mosis.package_84 } ]
    ~partitioning:pg
    ~assignment:[ ("P1", "chip1") ]
    ~clocks:(Chop_tech.Clocking.make ~main:300. ~datapath_ratio:1 ~transfer_ratio:1)
    ~style:(Chop_tech.Style.both Chop_tech.Style.Multi_cycle)
    ~criteria:(Chop_bad.Feasibility.criteria ~perf:50000. ~delay:50000. ())
    ()

(* ------------------------------------------------------------------ *)
(* Spec *)

let test_spec_builds () =
  let spec = exp1 2 in
  Alcotest.(check int) "two chips" 2 (List.length spec.Spec.chips);
  Alcotest.(check int) "two assignments" 2 (List.length spec.Spec.assignment)

let test_spec_rejects_unassigned_partition () =
  let g = Chop_dfg.Benchmarks.ar_lattice_filter () in
  let pg = Chop_dfg.Partition.by_levels g ~k:2 in
  match
    Spec.make ~graph:g ~library:Chop_tech.Mosis.experiment_library
      ~chips:[ { Spec.chip_name = "c"; package = Chop_tech.Mosis.package_84 } ]
      ~partitioning:pg
      ~assignment:[ ("P1", "c") ]
      ~clocks:(Chop_tech.Clocking.make ~main:300. ~datapath_ratio:10 ~transfer_ratio:1)
      ~style:(Chop_tech.Style.both Chop_tech.Style.Single_cycle)
      ~criteria:(Chop_bad.Feasibility.criteria ~perf:30000. ~delay:30000. ())
      ()
  with
  | exception Spec.Invalid_spec _ -> ()
  | _ -> Alcotest.fail "unassigned partition accepted"

let test_spec_rejects_unknown_chip () =
  let g = Chop_dfg.Benchmarks.ar_lattice_filter () in
  let pg = Chop_dfg.Partition.whole g in
  match
    Spec.make ~graph:g ~library:Chop_tech.Mosis.experiment_library
      ~chips:[ { Spec.chip_name = "c"; package = Chop_tech.Mosis.package_84 } ]
      ~partitioning:pg
      ~assignment:[ ("P1", "ghost") ]
      ~clocks:(Chop_tech.Clocking.make ~main:300. ~datapath_ratio:10 ~transfer_ratio:1)
      ~style:(Chop_tech.Style.both Chop_tech.Style.Single_cycle)
      ~criteria:(Chop_bad.Feasibility.criteria ~perf:30000. ~delay:30000. ())
      ()
  with
  | exception Spec.Invalid_spec _ -> ()
  | _ -> Alcotest.fail "unknown chip accepted"

let test_spec_rejects_undeclared_memory () =
  let g = Chop_dfg.Benchmarks.memory_pipeline ~blocks:("A", "B") () in
  let pg = Chop_dfg.Partition.whole g in
  match
    Spec.make ~graph:g ~library:Chop_tech.Mosis.experiment_library
      ~chips:[ { Spec.chip_name = "c"; package = Chop_tech.Mosis.package_84 } ]
      ~partitioning:pg
      ~assignment:[ ("P1", "c") ]
      ~clocks:(Chop_tech.Clocking.make ~main:300. ~datapath_ratio:1 ~transfer_ratio:1)
      ~style:(Chop_tech.Style.both Chop_tech.Style.Multi_cycle)
      ~criteria:(Chop_bad.Feasibility.criteria ~perf:30000. ~delay:30000. ())
      ()
  with
  | exception Spec.Invalid_spec _ -> ()
  | _ -> Alcotest.fail "undeclared memory accepted"

let test_spec_rejects_hostless_onchip_memory () =
  let g = Chop_dfg.Benchmarks.memory_pipeline ~blocks:("A", "B") () in
  let pg = Chop_dfg.Partition.whole g in
  let mem name =
    Chop_tech.Memory.make ~name ~words:64 ~word_width:16 ~ports:1 ~access:120.
      ~placement:(Chop_tech.Memory.On_chip 4000.)
  in
  match
    Spec.make
      ~memories:[ mem "A"; mem "B" ]
      ~graph:g ~library:Chop_tech.Mosis.experiment_library
      ~chips:[ { Spec.chip_name = "c"; package = Chop_tech.Mosis.package_84 } ]
      ~partitioning:pg
      ~assignment:[ ("P1", "c") ]
      ~clocks:(Chop_tech.Clocking.make ~main:300. ~datapath_ratio:1 ~transfer_ratio:1)
      ~style:(Chop_tech.Style.both Chop_tech.Style.Multi_cycle)
      ~criteria:(Chop_bad.Feasibility.criteria ~perf:30000. ~delay:30000. ())
      ()
  with
  | exception Spec.Invalid_spec _ -> ()
  | _ -> Alcotest.fail "hostless on-chip memory accepted"

let test_spec_accessors () =
  let spec = memory_spec () in
  Alcotest.(check string) "chip lookup" "chip1" (Spec.chip spec "chip1").Spec.chip_name;
  Alcotest.(check string) "chip of partition" "chip1"
    (Spec.chip_of_partition spec "P1").Spec.chip_name;
  Alcotest.(check int) "partitions on chip" 1
    (List.length (Spec.partitions_on spec "chip1"));
  Alcotest.(check (option string)) "memory host" (Some "chip1") (Spec.memory_host spec "A");
  Alcotest.(check (list string)) "accessors of A" [ "P1" ] (Spec.partitions_accessing spec "A");
  Alcotest.(check int) "memories of P1" 2
    (List.length (Spec.memories_of_partition spec "P1"))

(* ------------------------------------------------------------------ *)
(* Transfer *)

let test_transfer_single_partition () =
  let spec = exp1 1 in
  let tasks = Transfer.create spec in
  (* in + out, no inter-partition flows *)
  Alcotest.(check int) "two io tasks" 2 (List.length tasks);
  List.iter
    (fun t -> Alcotest.(check bool) "io crosses chip" true t.Transfer.cross_chip)
    tasks

let test_transfer_two_partitions () =
  let spec = exp1 2 in
  let tasks = Transfer.create spec in
  let flows =
    List.filter
      (fun t ->
        match (t.Transfer.src, t.Transfer.dst) with
        | Transfer.Partition_end _, Transfer.Partition_end _ -> true
        | _ -> false)
      tasks
  in
  Alcotest.(check int) "one inter-partition flow" 1 (List.length flows);
  let f = List.hd flows in
  Alcotest.(check bool) "flow crosses chips" true f.Transfer.cross_chip;
  Alcotest.(check bool) "flow has bits" true (f.Transfer.bits > 0)

let test_transfer_same_chip_flow_needs_no_pins () =
  (* both partitions on one chip: the flow must not be cross-chip *)
  let g = Chop_dfg.Benchmarks.ar_lattice_filter () in
  let pg = Chop_dfg.Partition.by_levels g ~k:2 in
  let spec =
    Spec.make ~graph:g ~library:Chop_tech.Mosis.experiment_library
      ~chips:[ { Spec.chip_name = "c"; package = Chop_tech.Mosis.package_84 } ]
      ~partitioning:pg
      ~assignment:[ ("P1", "c"); ("P2", "c") ]
      ~clocks:(Chop_tech.Clocking.make ~main:300. ~datapath_ratio:10 ~transfer_ratio:1)
      ~style:(Chop_tech.Style.both Chop_tech.Style.Single_cycle)
      ~criteria:(Chop_bad.Feasibility.criteria ~perf:30000. ~delay:30000. ())
      ()
  in
  let tasks = Transfer.create spec in
  let flow =
    List.find
      (fun t ->
        match (t.Transfer.src, t.Transfer.dst) with
        | Transfer.Partition_end _, Transfer.Partition_end _ -> true
        | _ -> false)
      tasks
  in
  Alcotest.(check bool) "on-chip" false flow.Transfer.cross_chip;
  (* P1 consumes the primary inputs AND drives the y1/y2 outputs; P2 drives
     the remaining outputs: 3 cross-chip io tasks x 2 pins.  The on-chip
     flow reserves none. *)
  Alcotest.(check int) "no control pins for the flow" 6
    (Transfer.control_pins_on spec tasks "c")

let test_transfer_control_pins () =
  let spec = exp1 2 in
  let tasks = Transfer.create spec in
  (* chip1: input io + y1/y2 output io + flow out = 3 tasks -> 6 pins.
     chip2: flow in + output io = 2 tasks -> 4 pins. *)
  Alcotest.(check int) "chip1" 6 (Transfer.control_pins_on spec tasks "chip1");
  Alcotest.(check int) "chip2" 4 (Transfer.control_pins_on spec tasks "chip2")

let test_transfer_memory_lines () =
  let spec = memory_spec () in
  (* two hosted+accessed blocks: 2 select/rw lines each, no bus pins *)
  Alcotest.(check int) "4 lines" 4 (Transfer.memory_lines_on spec "chip1")

let test_chips_of () =
  let spec = exp1 2 in
  let tasks = Transfer.create spec in
  List.iter
    (fun t ->
      let chips = Transfer.chips_of t in
      match (t.Transfer.src, t.Transfer.dst) with
      | Transfer.World, _ | _, Transfer.World ->
          Alcotest.(check int) "io touches one chip" 1 (List.length chips)
      | _ -> Alcotest.(check int) "flow touches two" 2 (List.length chips))
    tasks

(* ------------------------------------------------------------------ *)
(* Integration *)

let test_integration_feasible_combo () =
  let spec = exp1 1 in
  let per_partition, _ = explore_predictions spec in
  let ctx = Integration.context spec in
  let comb = List.map (fun (l, ps) -> (l, List.hd ps)) per_partition in
  let s = Integration.integrate ctx comb in
  Alcotest.(check bool) "clock at least main" true (s.Integration.clock >= 300.);
  Alcotest.(check bool) "delay cycles > ii is allowed" true
    (s.Integration.delay_cycles > 0);
  Alcotest.(check int) "chip reports" 1 (List.length s.Integration.chip_reports)

let test_integration_rejects_wrong_combination () =
  let spec = exp1 2 in
  let per_partition, _ = explore_predictions spec in
  let ctx = Integration.context spec in
  let comb = [ (fst (List.hd per_partition), List.hd (snd (List.hd per_partition))) ] in
  match Integration.integrate ctx comb with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "partial combination accepted"

let test_integration_rate_mismatch_detected () =
  let spec = exp1 2 in
  let per_partition, _ = explore_predictions spec in
  let ctx = Integration.context spec in
  (* find two pipelined predictions with different rates *)
  let pipelined l =
    List.filter
      (fun p -> p.Chop_bad.Prediction.style = Chop_tech.Style.Pipelined)
      (List.assoc l (List.map (fun (l, ps) -> (l, ps)) per_partition))
  in
  let p1s = pipelined "P1" and p2s = pipelined "P2" in
  let differing =
    List.concat_map
      (fun a ->
        List.filter_map
          (fun b ->
            if
              Chop_bad.Prediction.ii_main spec.Spec.clocks a
              <> Chop_bad.Prediction.ii_main spec.Spec.clocks b
            then Some (a, b)
            else None)
          p2s)
      p1s
  in
  match differing with
  | [] -> () (* pruning left no mismatched pair: nothing to assert *)
  | (a, b) :: _ -> (
      let s = Integration.integrate ctx [ ("P1", a); ("P2", b) ] in
      match s.Integration.failure with
      | Integration.Rate_mismatch _ -> ()
      | _ -> Alcotest.fail "mismatch not detected")

let test_integration_buffer_formula () =
  let spec = exp1 2 in
  let s = first_feasible spec in
  List.iter
    (fun d ->
      if d.Integration.task.Transfer.cross_chip then begin
        let l = float_of_int s.Integration.ii_main in
        let expected =
          float_of_int d.Integration.task.Transfer.bits
          *. (ceil (float_of_int d.Integration.wait_main /. l)
             +. (float_of_int d.Integration.transfer_main /. l))
          |> ceil |> int_of_float
        in
        Alcotest.(check int) "B = D*(ceil(W/l)+X/l)" expected d.Integration.buffer_bits
      end)
    s.Integration.dtms

let test_integration_dtm_on_both_chips () =
  let spec = exp1 2 in
  let s = first_feasible spec in
  (* every chip involved in cross-chip transfers carries DTM area *)
  List.iter
    (fun cr ->
      Alcotest.(check bool) "dtm area present" true (cr.Integration.dtm_area > 0.))
    s.Integration.chip_reports

let test_integration_memory_resource () =
  let spec = memory_spec () in
  let report = explore_run Explore.Enumeration spec in
  Alcotest.(check bool) "memory design feasible" true
    (report.Explore.outcome.Search.feasible <> [])

let test_integration_transfer_clock_floor () =
  let spec = exp1 2 in
  let s = first_feasible spec in
  (* pad delay alone is 2 x 25 ns; the adjusted clock covers it *)
  Alcotest.(check bool) "clock covers pads" true (s.Integration.clock >= 50.)

let test_total_area_and_objectives () =
  let spec = exp1 1 in
  let s = first_feasible spec in
  let t = Integration.total_area s in
  Alcotest.(check bool) "positive" true Chop_util.Triplet.(t.likely > 0.);
  let o = Integration.objectives s in
  Alcotest.(check int) "3 objectives" 3 (Array.length o);
  Alcotest.(check (float 1e-6)) "first is perf" s.Integration.perf_ns o.(0)

let test_integration_failure_kinds () =
  let spec = exp1 2 in
  let ctx = Integration.context spec in
  let per_partition, _ = explore_predictions spec in
  let comb = List.map (fun (l, ps) -> (l, List.hd ps)) per_partition in
  (* Too_slow: an interval below the partitions' rate *)
  (match (Integration.integrate ctx ~ii_target:1 comb).Integration.failure with
  | Integration.Too_slow -> ()
  | _ -> Alcotest.fail "expected Too_slow");
  (* Delay_exceeded: a delay constraint nothing can meet *)
  let tight =
    Advisor.set_constraints spec
      ~criteria:(Chop_bad.Feasibility.criteria ~perf:30000. ~delay:5. ())
  in
  let ctx_tight = Integration.context tight in
  (match (Integration.integrate ctx_tight comb).Integration.failure with
  | Integration.Delay_exceeded -> ()
  | f ->
      Alcotest.fail
        (Printf.sprintf "expected Delay_exceeded, got %s"
           (match f with
           | Integration.No_failure -> "No_failure"
           | Integration.Rate_mismatch _ -> "Rate_mismatch"
           | Integration.Area_violation _ -> "Area_violation"
           | Integration.Data_clash -> "Data_clash"
           | Integration.Too_slow -> "Too_slow"
           | Integration.Delay_exceeded -> "Delay_exceeded"
           | Integration.Structural r -> "Structural: " ^ r)));
  (* Area_violation: pick the biggest raw predictions (mul1-heavy) *)
  let raw, _ = explore_predictions ~prune:false spec in
  let biggest =
    List.map
      (fun (l, ps) ->
        ( l,
          List.fold_left
            (fun best p ->
              if
                Chop_util.Triplet.mean p.Chop_bad.Prediction.area
                > Chop_util.Triplet.mean best.Chop_bad.Prediction.area
              then p
              else best)
            (List.hd ps) ps ))
      raw
  in
  (match (Integration.integrate ctx biggest).Integration.failure with
  | Integration.Area_violation labels ->
      Alcotest.(check bool) "violating partitions named" true (labels <> [])
  | _ -> Alcotest.fail "expected Area_violation")

let test_integration_structural_pin_exhaustion () =
  (* a 10-pin package cannot even carry the reserved control lines *)
  let g = Chop_dfg.Benchmarks.ar_lattice_filter () in
  let pg = Chop_dfg.Partition.by_levels g ~k:2 in
  let tiny =
    Chop_tech.Chip.make ~name:"tiny" ~width:311.02 ~height:362.20 ~pins:10
      ~pad_delay:25. ~pad_area:297.6
  in
  let spec =
    Rig.custom ~graph:g ~partitioning:pg ~package:tiny
      ~clocks:(Chop_tech.Clocking.make ~main:300. ~datapath_ratio:10 ~transfer_ratio:1)
      ~style:(Chop_tech.Style.both Chop_tech.Style.Single_cycle)
      ~criteria:(Chop_bad.Feasibility.criteria ~perf:30000. ~delay:30000. ())
      ()
  in
  let ctx = Integration.context spec in
  let per_partition, _ = explore_predictions spec in
  let comb = List.map (fun (l, ps) -> (l, List.hd ps)) per_partition in
  match (Integration.integrate ctx comb).Integration.failure with
  | Integration.Structural _ -> ()
  | _ -> Alcotest.fail "expected Structural pin exhaustion"

let test_integration_shared_remote_memory () =
  (* two partitions on different chips both read block M hosted on chip1:
     the remote chip pays bus pins, and M's single port serializes them *)
  let b = Chop_dfg.Graph.builder ~name:"shared_mem" () in
  let width = 16 in
  let r1 = Chop_dfg.Graph.add_node b ~name:"r1" ~op:(Chop_dfg.Op.Mem_read "M") ~width in
  let c1 = Chop_dfg.Graph.add_node b ~name:"c1" ~op:Chop_dfg.Op.Const ~width in
  let m1 = Chop_dfg.Graph.add_node b ~name:"m1" ~op:Chop_dfg.Op.Mult ~width in
  Chop_dfg.Graph.add_edge b ~src:r1 ~dst:m1;
  Chop_dfg.Graph.add_edge b ~src:c1 ~dst:m1;
  let r2 = Chop_dfg.Graph.add_node b ~name:"r2" ~op:(Chop_dfg.Op.Mem_read "M") ~width in
  let a2 = Chop_dfg.Graph.add_node b ~name:"a2" ~op:Chop_dfg.Op.Add ~width in
  Chop_dfg.Graph.add_edge b ~src:r2 ~dst:a2;
  Chop_dfg.Graph.add_edge b ~src:m1 ~dst:a2;
  let o = Chop_dfg.Graph.add_node b ~name:"y" ~op:Chop_dfg.Op.Output ~width in
  Chop_dfg.Graph.add_edge b ~src:a2 ~dst:o;
  let g = Chop_dfg.Graph.build b in
  let pg =
    Chop_dfg.Partition.partitioning g
      [ Chop_dfg.Partition.make ~label:"P1" [ r1; m1 ];
        Chop_dfg.Partition.make ~label:"P2" [ r2; a2 ] ]
  in
  let mem =
    Chop_tech.Memory.make ~name:"M" ~words:64 ~word_width:16 ~ports:1
      ~access:120. ~placement:(Chop_tech.Memory.On_chip 4000.)
  in
  let spec =
    Spec.make ~memories:[ mem ] ~memory_hosts:[ ("M", "chip1") ] ~graph:g
      ~library:Chop_tech.Mosis.experiment_library
      ~chips:
        [ { Spec.chip_name = "chip1"; package = Chop_tech.Mosis.package_84 };
          { Spec.chip_name = "chip2"; package = Chop_tech.Mosis.package_84 } ]
      ~partitioning:pg
      ~assignment:[ ("P1", "chip1"); ("P2", "chip2") ]
      ~clocks:(Chop_tech.Clocking.make ~main:300. ~datapath_ratio:1 ~transfer_ratio:1)
      ~style:(Chop_tech.Style.both Chop_tech.Style.Multi_cycle)
      ~criteria:(Chop_bad.Feasibility.criteria ~perf:50000. ~delay:50000. ())
      ()
  in
  (* the remote chip (chip2) reserves bus pins for the on-chip block it
     does not host *)
  Alcotest.(check bool) "remote bus pins reserved" true
    (Transfer.memory_lines_on spec "chip2" >= 16 + 2);
  Alcotest.(check int) "host pays only select/rw" 2
    (Transfer.memory_lines_on spec "chip1");
  let report = explore_run Explore.Iterative spec in
  (match report.Explore.outcome.Search.feasible with
  | [] -> Alcotest.fail "shared-memory system should be feasible"
  | s :: _ ->
      let ctx = Integration.context spec in
      let sim = Sysim.simulate ctx ~instances:6 s in
      Alcotest.(check bool) "simulation consistent" true
        (Sysim.throughput_consistent s sim));
  Alcotest.(check (list string)) "both partitions access M" [ "P1"; "P2" ]
    (Spec.partitions_accessing spec "M")

(* ------------------------------------------------------------------ *)
(* Heuristics + Explore *)

let test_exp1_shape_two_partitions_faster () =
  let best spec =
    (first_feasible spec).Integration.perf_ns
  in
  let p1 = best (exp1 1) and p2 = best (exp1 2) in
  Alcotest.(check bool) "2 chips ~2x faster" true (p2 < p1)

let test_exp2_reaches_higher_performance () =
  let best spec = (first_feasible spec).Integration.perf_ns in
  (* multi-cycle (exp2) 3-partition designs beat exp1 3-partition designs *)
  Alcotest.(check bool) "multi-cycle faster" true (best (exp2 3) < best (exp1 3))

let test_enum_vs_iter_same_best_ii () =
  let spec = exp2 3 in
  let best h =
    let r = explore_run h spec in
    match r.Explore.outcome.Search.feasible with
    | s :: _ -> s.Integration.ii_main
    | [] -> max_int
  in
  Alcotest.(check int) "same fastest interval" (best Explore.Enumeration)
    (best Explore.Iterative)

let test_iter_fewer_trials_on_large_space () =
  let spec = exp2 3 in
  let trials h =
    (explore_run h spec).Explore.outcome.Search.stats.Search.implementation_trials
  in
  Alcotest.(check bool) "iterative explores far less" true
    (trials Explore.Iterative * 5 < trials Explore.Enumeration)

let test_branch_bound_matches_enumeration () =
  List.iter
    (fun spec ->
      let best h =
        match (explore_run h spec).Explore.outcome.Search.feasible with
        | s :: _ ->
            Some (s.Integration.ii_main, s.Integration.delay_cycles)
        | [] -> None
      in
      let e = best Explore.Enumeration and b = best Explore.Branch_bound in
      Alcotest.(check bool) "same best design" true (e = b))
    [ exp1 2; exp2 2; exp2 3 ]

let test_branch_bound_never_more_integrations () =
  List.iter
    (fun spec ->
      let integ h =
        (explore_run h spec).Explore.outcome.Search.stats.Search.integrations
      in
      Alcotest.(check bool) "bounds help" true
        (integ Explore.Branch_bound <= integ Explore.Enumeration))
    [ exp1 2; exp2 3 ]

let test_explore_bad_stats () =
  let r = explore_run Explore.Iterative (exp1 2) in
  Alcotest.(check int) "stats per partition" 2 (List.length r.Explore.bad);
  List.iter
    (fun b ->
      Alcotest.(check bool) "kept <= feasible <= total" true
        (b.Explore.kept <= b.Explore.feasible_predictions
        && b.Explore.feasible_predictions <= b.Explore.total_predictions))
    r.Explore.bad

let test_keep_all_explodes_space () =
  let run_e ?(keep_all = false) ~pre_prune spec =
    Explore.with_engine
      (Explore.Config.make ~heuristic:Explore.Enumeration ~keep_all ~pre_prune
         ())
      spec Explore.Engine.run
  in
  let pruned = run_e ~pre_prune:true (exp1 2) in
  (* the full Figure 7/8 dump needs the pre-pruner off *)
  let all = run_e ~keep_all:true ~pre_prune:false (exp1 2) in
  let explored = List.length all.Explore.outcome.Search.explored in
  Alcotest.(check bool) "keep-all records everything" true (explored > 100);
  Alcotest.(check int) "pruned records nothing" 0
    (List.length pruned.Explore.outcome.Search.explored);
  Alcotest.(check bool) "keep-all takes more trials" true
    (all.Explore.outcome.Search.stats.Search.implementation_trials
    > pruned.Explore.outcome.Search.stats.Search.implementation_trials);
  let uniq = Explore.unique_designs all.Explore.outcome.Search.explored in
  Alcotest.(check bool) "unique <= total" true (uniq <= explored);
  Alcotest.(check bool) "duplicates exist" true (uniq < explored);
  (* dominance pre-pruning shrinks the dump but never the feasible front *)
  let defaulted = run_e ~keep_all:true ~pre_prune:true (exp1 2) in
  Alcotest.(check bool) "pre-pruned dump is no larger" true
    (List.length defaulted.Explore.outcome.Search.explored <= explored);
  Alcotest.(check string) "pre-pruning preserves the feasible front"
    (Search.to_csv all.Explore.outcome.Search.feasible)
    (Search.to_csv defaulted.Explore.outcome.Search.feasible)

let test_candidate_intervals_within_constraint () =
  let spec = exp1 2 in
  let per_partition, _ = explore_predictions spec in
  let ctx = Integration.context spec in
  let ls = Iter_heuristic.candidate_intervals ctx per_partition in
  Alcotest.(check bool) "non-empty" true (ls <> []);
  let sorted = List.sort Int.compare ls in
  Alcotest.(check (list int)) "ascending unique" sorted ls;
  List.iter
    (fun l ->
      Alcotest.(check bool) "within perf at nominal clock" true
        (float_of_int l *. 300. <= 30000.))
    ls

let test_feasible_sorted_fastest_first () =
  let r = explore_run Explore.Enumeration (exp2 2) in
  let perfs =
    List.map (fun s -> s.Integration.perf_ns) r.Explore.outcome.Search.feasible
  in
  let rec ascending = function
    | a :: (b :: _ as rest) -> a <= b && ascending rest
    | _ -> true
  in
  Alcotest.(check bool) "ascending perf" true (ascending perfs)

(* ------------------------------------------------------------------ *)
(* Report *)

let test_guideline_content () =
  let spec = exp1 2 in
  let s = first_feasible spec in
  let text = Report.guideline spec s in
  Alcotest.(check bool) "mentions partitions" true (contains text "Partition P1");
  Alcotest.(check bool) "mentions dtm" true (contains text "Data transfer module");
  Alcotest.(check bool) "mentions chips" true (contains text "Chip chip1");
  Alcotest.(check bool) "mentions buffer" true (contains text "buffer")

let test_timeline_and_csv () =
  let spec = exp1 2 in
  let s = first_feasible spec in
  let text = Report.timeline s in
  Alcotest.(check bool) "shows pu bars" true (contains text "pu_P1");
  Alcotest.(check bool) "shows dt bars" true (contains text "dt_");
  let csv = Search.to_csv [ s ] in
  Alcotest.(check bool) "header" true (contains csv "ii_main,clock_ns");
  Alcotest.(check int) "one data row" 3 (List.length (String.split_on_char '\n' csv))

let test_summary_row () =
  let spec = exp1 1 in
  let s = first_feasible spec in
  let row = Report.summary_row spec s in
  Alcotest.(check int) "3 cells" 3 (List.length row);
  Alcotest.(check string) "ii" (string_of_int s.Integration.ii_main) (List.nth row 0)

(* ------------------------------------------------------------------ *)
(* Advisor *)

let test_advisor_what_if () =
  let j = Advisor.what_if (exp1 2) in
  Alcotest.(check bool) "feasible" true j.Advisor.feasible;
  Alcotest.(check bool) "has best" true (j.Advisor.best <> None);
  Alcotest.(check bool) "advice text" true (String.length j.Advisor.advice > 10)

let test_advisor_move_partition () =
  let spec = exp1 2 in
  let spec' = Advisor.move_partition spec ~partition:"P2" ~to_chip:"chip1" in
  Alcotest.(check string) "moved" "chip1"
    (Spec.chip_of_partition spec' "P2").Spec.chip_name;
  match Advisor.move_partition spec ~partition:"P2" ~to_chip:"ghost" with
  | exception Advisor.Rejected _ -> ()
  | _ -> Alcotest.fail "unknown chip accepted"

let test_advisor_move_operation () =
  let spec = exp1 2 in
  let p2 = Chop_dfg.Partition.find spec.Spec.partitioning "P2" in
  (* move one of P2's operations into P1; pick one whose move keeps the
     quotient acyclic: the first in topological order *)
  let candidate = List.hd p2.Chop_dfg.Partition.members in
  (match Advisor.move_operation spec ~op:candidate ~to_partition:"P1" with
  | spec' ->
      let p1' = Chop_dfg.Partition.find spec'.Spec.partitioning "P1" in
      Alcotest.(check bool) "moved" true
        (List.mem candidate p1'.Chop_dfg.Partition.members)
  | exception Advisor.Rejected _ -> ());
  match Advisor.move_operation spec ~op:candidate ~to_partition:"nope" with
  | exception Advisor.Rejected _ -> ()
  | _ -> Alcotest.fail "unknown partition accepted"

let test_advisor_move_operation_rejects_cycle () =
  (* moving a middle-level op from P1 to P2 and back-feeding would cycle;
     find an op whose move breaks acyclicity and check the rejection *)
  let spec = exp1 3 in
  let p1 = Chop_dfg.Partition.find spec.Spec.partitioning "P1" in
  let g = spec.Spec.graph in
  (* an op in P1 all of whose successors are in P3 creates P3->...->P3?  We
     instead verify the guard differently: moving an op with successors in
     P2 from P1 to P3 creates P3 -> P2 while P2 -> P3 exists. *)
  let candidates =
    List.filter
      (fun id ->
        List.exists
          (fun s ->
            match Chop_dfg.Partition.part_of spec.Spec.partitioning s with
            | p -> p.Chop_dfg.Partition.label = "P2"
            | exception Not_found -> false)
          (Chop_dfg.Graph.succs g id))
      p1.Chop_dfg.Partition.members
  in
  match candidates with
  | [] -> ()
  | op :: _ -> (
      match Advisor.move_operation spec ~op ~to_partition:"P3" with
      | exception Advisor.Rejected _ -> ()
      | _ -> Alcotest.fail "cyclic move accepted")

let test_advisor_swap_package () =
  let spec = exp1 2 in
  let spec' = Advisor.swap_package spec ~chip:"chip1" Chop_tech.Mosis.package_64 in
  Alcotest.(check int) "pins changed" 64
    (Spec.chip spec' "chip1").Spec.package.Chop_tech.Chip.pins

let test_advisor_set_constraints_breaks_feasibility () =
  let spec = exp1 2 in
  let tight =
    Advisor.set_constraints spec
      ~criteria:(Chop_bad.Feasibility.criteria ~perf:600. ~delay:600. ())
  in
  let j = Advisor.what_if tight in
  Alcotest.(check bool) "infeasible" false j.Advisor.feasible

let test_advisor_rehost_memory () =
  let spec = memory_spec () in
  (* rehosting to the same (only) chip is a no-op but must be accepted *)
  let spec' = Advisor.rehost_memory spec ~block:"A" ~to_chip:"chip1" in
  Alcotest.(check (option string)) "host" (Some "chip1") (Spec.memory_host spec' "A")

let test_advisor_optimize_memory_hosts () =
  (* two chips; block A is hot on P1's chip, so hosting it there should be
     at least as good as hosting it on chip2 *)
  let g = Chop_dfg.Benchmarks.memory_pipeline ~blocks:("A", "B") () in
  let pg = Chop_dfg.Partition.whole g in
  let mem name =
    Chop_tech.Memory.make ~name ~words:64 ~word_width:16 ~ports:1 ~access:120.
      ~placement:(Chop_tech.Memory.On_chip 4000.)
  in
  let chips =
    [ { Spec.chip_name = "chip1"; package = Chop_tech.Mosis.package_84 };
      { Spec.chip_name = "chip2"; package = Chop_tech.Mosis.package_84 } ]
  in
  let spec =
    Spec.make
      ~memories:[ mem "A"; mem "B" ]
      ~memory_hosts:[ ("A", "chip2"); ("B", "chip2") ]
      ~graph:g ~library:Chop_tech.Mosis.experiment_library ~chips
      ~partitioning:pg
      ~assignment:[ ("P1", "chip1") ]
      ~clocks:(Chop_tech.Clocking.make ~main:300. ~datapath_ratio:1 ~transfer_ratio:1)
      ~style:(Chop_tech.Style.both Chop_tech.Style.Multi_cycle)
      ~criteria:(Chop_bad.Feasibility.criteria ~perf:50000. ~delay:50000. ())
      ()
  in
  let before = Advisor.what_if spec in
  let optimized, after = Advisor.optimize_memory_hosts spec in
  Alcotest.(check bool) "optimization never loses" true
    (match (before.Advisor.best, after.Advisor.best) with
    | Some b, Some a -> a.Integration.perf_ns <= b.Integration.perf_ns
    | None, Some _ -> true
    | None, None -> true
    | Some _, None -> false);
  (* all on-chip blocks still have hosts *)
  Alcotest.(check bool) "hosts assigned" true
    (Spec.memory_host optimized "A" <> None && Spec.memory_host optimized "B" <> None)

let test_advisor_compare_specs () =
  let a = exp1 1 and b = exp1 2 in
  let text = Advisor.compare_specs a b in
  Alcotest.(check bool) "mentions improvement" true
    (contains text "improves performance")

(* ------------------------------------------------------------------ *)
(* Specfile *)

let demo_spec_text = {chop|
# a two-chip multiply-accumulate
graph demo width=16
node x input
node k const
node m mult x k
node a add m x
node y output a

chip chip1 pkg84
chip chip2 pins=64 die=311.02x362.20 pad_delay=25 pad_area=297.6
memory M words=64 width=16 ports=1 access=120 off_chip_pins=28
partition P1 = m
partition P2 = a
assign P1 chip1
assign P2 chip2
library extended
clock main=300 datapath=1 transfer=1
style multi_cycle
criteria perf=30000 delay=30000 delay_prob=0.8
params alloc_cap=4 max_iis=4 testability=0.0
|chop}

let test_specfile_parse () =
  let spec = Specfile.parse demo_spec_text in
  Alcotest.(check int) "two chips" 2 (List.length spec.Spec.chips);
  Alcotest.(check int) "graph ops" 2 (Chop_dfg.Graph.op_count spec.Spec.graph);
  Alcotest.(check int) "two partitions" 2
    (List.length spec.Spec.partitioning.Chop_dfg.Partition.parts);
  Alcotest.(check int) "one memory" 1 (List.length spec.Spec.memories);
  Alcotest.(check int) "alloc cap" 4 spec.Spec.params.Spec.alloc_cap;
  Alcotest.(check (float 1e-9)) "perf" 30000.
    spec.Spec.criteria.Chop_bad.Feasibility.perf_constraint;
  (* the parsed spec is actually explorable *)
  let report = explore_run Explore.Iterative spec in
  Alcotest.(check bool) "explorable" true
    (report.Explore.outcome.Search.feasible <> [])

let test_specfile_roundtrip () =
  let spec = Specfile.parse demo_spec_text in
  let reparsed = Specfile.parse (Specfile.print spec) in
  Alcotest.(check int) "chips" (List.length spec.Spec.chips)
    (List.length reparsed.Spec.chips);
  Alcotest.(check int) "ops" (Chop_dfg.Graph.op_count spec.Spec.graph)
    (Chop_dfg.Graph.op_count reparsed.Spec.graph);
  Alcotest.(check int) "library size" (List.length spec.Spec.library)
    (List.length reparsed.Spec.library);
  Alcotest.(check int) "memories" 1 (List.length reparsed.Spec.memories);
  (* behaviourally identical graphs *)
  Alcotest.(check bool) "graphs equivalent" true
    (let g1 = spec.Spec.graph and g2 = reparsed.Spec.graph in
     Chop_dfg.Graph.op_profile g1 = Chop_dfg.Graph.op_profile g2)

let test_specfile_roundtrip_experiment () =
  let spec = exp1 2 in
  let reparsed = Specfile.parse (Specfile.print spec) in
  (* the reparsed experiment gives the same best design *)
  let best s =
    match (explore_run Explore.Iterative s).Explore.outcome.Search.feasible with
    | x :: _ -> (x.Integration.ii_main, x.Integration.delay_cycles)
    | [] -> (-1, -1)
  in
  Alcotest.(check (pair int int)) "same outcome" (best spec) (best reparsed)

let replace_once text old_s new_s =
  let n = String.length text and no = String.length old_s in
  let rec find i =
    if i + no > n then None
    else if String.sub text i no = old_s then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> text
  | Some i ->
      String.sub text 0 i ^ new_s ^ String.sub text (i + no) (n - i - no)

let test_specfile_roundtrip_all_benchmarks () =
  List.iter
    (fun graph ->
      let partitioning =
        let levels = List.length (Chop_dfg.Analysis.levels graph) in
        if levels >= 2 then Chop_dfg.Partition.by_levels graph ~k:2
        else Chop_dfg.Partition.whole graph
      in
      let spec =
        Rig.custom ~library:Chop_tech.Mosis.extended_library ~graph ~partitioning
          ~package:Chop_tech.Mosis.package_64
          ~clocks:(Chop_tech.Clocking.make ~main:300. ~datapath_ratio:1 ~transfer_ratio:1)
          ~style:(Chop_tech.Style.both Chop_tech.Style.Multi_cycle)
          ~criteria:(Chop_bad.Feasibility.criteria ~perf:50000. ~delay:50000. ())
          ()
      in
      let reparsed = Specfile.parse (Specfile.print spec) in
      Alcotest.(check (list (pair string int)))
        (Chop_dfg.Graph.name graph ^ " profile survives")
        (Chop_dfg.Graph.op_profile spec.Spec.graph)
        (Chop_dfg.Graph.op_profile reparsed.Spec.graph);
      Alcotest.(check int)
        (Chop_dfg.Graph.name graph ^ " edges survive")
        (List.length (Chop_dfg.Graph.edges spec.Spec.graph))
        (List.length (Chop_dfg.Graph.edges reparsed.Spec.graph)))
    [
      Chop_dfg.Benchmarks.ar_lattice_filter ();
      Chop_dfg.Benchmarks.elliptic_wave_filter ();
      Chop_dfg.Benchmarks.fir_filter ~taps:8 ();
      Chop_dfg.Benchmarks.diffeq ();
      Chop_dfg.Benchmarks.dct8 ();
    ]

let expect_parse_error text =
  match Specfile.parse text with
  | exception Specfile.Parse_error _ -> ()
  | exception Spec.Invalid_spec _ -> ()
  | _ -> Alcotest.fail "bad spec accepted"

let test_specfile_errors () =
  expect_parse_error "node x input\n";
  expect_parse_error "graph g\nnode x banana\n";
  expect_parse_error "graph g\nnode y output ghost\n";
  expect_parse_error (demo_spec_text ^ "\nfrobnicate everything\n");
  expect_parse_error
    "graph g\nnode x input\nnode s shift x\nchip c pkg84\npartition P = s\nassign P c\n";
  (* ^ missing criteria *)
  expect_parse_error
    (replace_once demo_spec_text "assign P2 chip2" "assign P2 nowhere")

let test_specfile_load_from_file () =
  let path = Filename.temp_file "chopspec" ".chop" in
  let oc = open_out path in
  output_string oc demo_spec_text;
  close_out oc;
  let spec = Specfile.load path in
  Sys.remove path;
  Alcotest.(check int) "loaded" 2 (List.length spec.Spec.chips)

let test_specfile_line_numbers () =
  match Specfile.parse "graph g\nnode x banana\n" with
  | exception Specfile.Parse_error (line, _) -> Alcotest.(check int) "line 2" 2 line
  | _ -> Alcotest.fail "expected error"

let expect_parse_error_with text fragments =
  match Specfile.parse text with
  | exception Specfile.Parse_error (_, msg) ->
      List.iter
        (fun f ->
          Alcotest.(check bool)
            (Printf.sprintf "message %S mentions %S" msg f)
            true (contains msg f))
        fragments
  | _ -> Alcotest.fail "bad spec accepted"

let test_specfile_duplicate_keys_rejected () =
  (* a repeated key would silently win by position in [attr]; the parser
     names the offending token by 0-based index instead *)
  expect_parse_error_with
    (replace_once demo_spec_text "criteria perf=30000 delay=30000 delay_prob=0.8"
       "criteria perf=30000 perf=1 delay=30000")
    [ "duplicate"; "criteria"; "\"perf\""; "token 1" ];
  expect_parse_error_with
    (demo_spec_text
    ^ "processor cpu issue=2 cycle=300 code=4 data=2 mem=256 bus=16 mem=512\n")
    [ "duplicate"; "processor"; "\"mem\""; "token 6" ]

let test_specfile_impl_unknown_model () =
  expect_parse_error_with
    (demo_spec_text ^ "impl P1 dsp\n")
    [ "unknown model"; "\"dsp\"" ];
  (* referencing a processor before its declaration is the same error *)
  expect_parse_error_with
    (demo_spec_text ^ "impl P1 cpu\nprocessor cpu issue=2 cycle=300 code=4 data=2 mem=256 bus=16\n")
    [ "unknown model"; "\"cpu\"" ]

let test_specfile_processor_impl_roundtrip () =
  let text =
    demo_spec_text
    ^ "processor cpu issue=4 cycle=300 code=4 data=2 mem=176 bus=16\n\
       impl P2 cpu\n"
  in
  let spec = Specfile.parse text in
  let reparsed = Specfile.parse (Specfile.print spec) in
  List.iter
    (fun (s : Spec.t) ->
      match s.Spec.processors with
      | [ p ] ->
          Alcotest.(check string) "name" "cpu" p.Chop_model_sw.Processor.pname;
          Alcotest.(check int) "issue" 4 p.Chop_model_sw.Processor.issue_slots;
          Alcotest.(check (float 1e-9)) "budget" 176.
            p.Chop_model_sw.Processor.memory_budget_bytes;
          Alcotest.(check (list (pair string string))) "binding"
            [ ("P2", "cpu") ] s.Spec.impls;
          Alcotest.(check string) "impl_of_partition" "cpu"
            (Spec.impl_of_partition s "P2");
          Alcotest.(check string) "unbound partitions stay hardware" "hw"
            (Spec.impl_of_partition s "P1")
      | ps -> Alcotest.failf "%d processors" (List.length ps))
    [ spec; reparsed ];
  (* identical processor signatures across the round-trip: the cache
     identity of a restored software partition is unchanged *)
  Alcotest.(check string) "signature survives"
    (Chop_model_sw.Processor.signature (List.hd spec.Spec.processors))
    (Chop_model_sw.Processor.signature (List.hd reparsed.Spec.processors))

(* ------------------------------------------------------------------ *)
(* Sysim *)

let test_sysim_matches_prediction () =
  let spec = exp1 2 in
  let ctx = Integration.context spec in
  let s = first_feasible spec in
  let r = Sysim.simulate ctx ~instances:10 s in
  (* the first instance's completion is exactly the predicted system delay *)
  Alcotest.(check int) "first latency = predicted delay"
    s.Integration.delay_cycles r.Sysim.first_latency;
  Alcotest.(check bool) "throughput within prediction" true
    (Sysim.throughput_consistent s r)

let test_sysim_steady_state_rate () =
  let spec = exp2 3 in
  let ctx = Integration.context spec in
  let s = first_feasible spec in
  let r = Sysim.simulate ctx ~instances:16 s in
  (* achieved rate is positive and no slower than the prediction allows *)
  Alcotest.(check bool) "rate positive" true (r.Sysim.achieved_ii > 0.);
  Alcotest.(check bool) "consistent" true (Sysim.throughput_consistent s r);
  Alcotest.(check bool) "makespan grows with instances" true
    (r.Sysim.makespan > r.Sysim.first_latency)

let test_sysim_single_instance () =
  let spec = exp1 1 in
  let ctx = Integration.context spec in
  let s = first_feasible spec in
  let r = Sysim.simulate ctx ~instances:1 s in
  Alcotest.(check int) "makespan = first" r.Sysim.first_latency r.Sysim.makespan

let test_sysim_rejects_failed_integration () =
  let spec = exp1 2 in
  let ctx = Integration.context spec in
  let per_partition, _ = explore_predictions spec in
  let comb = List.map (fun (l, ps) -> (l, List.hd ps)) per_partition in
  (* force an infeasible integration by demanding an impossible interval *)
  let broken = Integration.integrate ctx ~ii_target:0 comb in
  if not (Integration.feasible broken) && broken.Integration.dtms = [] then
    match Sysim.simulate ctx broken with
    | exception Sysim.Unsimulatable _ -> ()
    | _ -> Alcotest.fail "failed integration simulated"

let test_sysim_validates_instances () =
  let spec = exp1 1 in
  let ctx = Integration.context spec in
  let s = first_feasible spec in
  match Sysim.simulate ctx ~instances:0 s with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "0 instances accepted"

(* ------------------------------------------------------------------ *)
(* Sensitivity *)

let test_sensitivity_perf_monotone () =
  let spec = exp1 2 in
  let s = Sensitivity.performance_constraint spec ~values:[ 30000.; 9000.; 3000. ] in
  Alcotest.(check int) "3 points" 3 (List.length s.Sensitivity.points);
  let feas = List.map (fun p -> p.Sensitivity.feasible) s.Sensitivity.points in
  (* relaxing a constraint can never turn a feasible point infeasible when
     sweeping downward: feasibility is monotone in the constraint *)
  Alcotest.(check bool) "monotone" true
    (match feas with
    | [ a; b; c ] -> a >= b && b >= c
    | _ -> false)

let test_sensitivity_cliff () =
  let spec = exp1 2 in
  let s = Sensitivity.performance_constraint spec ~values:[ 30000.; 9000.; 3000. ] in
  (match Sensitivity.cliff s with
  | Some v -> Alcotest.(check bool) "cliff below 9000" true (v <= 9000.)
  | None -> Alcotest.fail "expected a cliff");
  let flat = Sensitivity.performance_constraint spec ~values:[ 30000.; 29000. ] in
  Alcotest.(check bool) "no cliff when all feasible" true
    (Sensitivity.cliff flat = None)

let test_sensitivity_pins () =
  let spec = exp1 2 in
  let s = Sensitivity.pin_count spec ~values:[ 84; 10; 0 ] in
  (match s.Sensitivity.points with
  | [ p84; p10; p0 ] ->
      Alcotest.(check bool) "84 feasible" true p84.Sensitivity.feasible;
      Alcotest.(check bool) "10 infeasible" false p10.Sensitivity.feasible;
      Alcotest.(check bool) "0 infeasible" false p0.Sensitivity.feasible
  | _ -> Alcotest.fail "3 points expected")

let test_sensitivity_clock_and_delay () =
  let spec = exp1 2 in
  let c = Sensitivity.main_clock spec ~values:[ 300.; -1. ] in
  (match c.Sensitivity.points with
  | [ ok; bad ] ->
      Alcotest.(check bool) "300 feasible" true ok.Sensitivity.feasible;
      Alcotest.(check bool) "negative clock infeasible" false bad.Sensitivity.feasible
  | _ -> Alcotest.fail "2 points expected");
  let d = Sensitivity.delay_constraint spec ~values:[ 30000.; 1. ] in
  Alcotest.(check int) "2 points" 2 (List.length d.Sensitivity.points)

let test_sensitivity_grid () =
  let spec = exp1 2 in
  let grid =
    Sensitivity.performance_pins_grid spec ~perf_values:[ 30000.; 3000. ]
      ~pin_values:[ 84; 10 ]
  in
  (* generous corner feasible, starved corner not; map renders *)
  Alcotest.(check bool) "loose corner feasible" true grid.Sensitivity.cells.(0).(0);
  Alcotest.(check bool) "tight corner infeasible" false grid.Sensitivity.cells.(1).(1);
  let text = Sensitivity.render_grid grid in
  Alcotest.(check bool) "renders" true (String.length text > 20)

let test_sensitivity_render () =
  let spec = exp1 1 in
  let s = Sensitivity.performance_constraint spec ~values:[ 30000. ] in
  let text = Sensitivity.render s in
  Alcotest.(check bool) "mentions parameter" true (contains text "performance")

let test_explore_with_no_viable_partition () =
  (* a package too small for any prediction: exploration must terminate
     with a clean empty result under every heuristic *)
  let g = Chop_dfg.Benchmarks.ar_lattice_filter () in
  let tiny =
    Chop_tech.Chip.make ~name:"tiny" ~width:50. ~height:50. ~pins:84
      ~pad_delay:25. ~pad_area:1.
  in
  let spec =
    Rig.custom ~graph:g ~partitioning:(Chop_dfg.Partition.whole g) ~package:tiny
      ~clocks:(Chop_tech.Clocking.make ~main:300. ~datapath_ratio:10 ~transfer_ratio:1)
      ~style:(Chop_tech.Style.both Chop_tech.Style.Single_cycle)
      ~criteria:(Chop_bad.Feasibility.criteria ~perf:30000. ~delay:30000. ())
      ()
  in
  List.iter
    (fun h ->
      let report = explore_run h spec in
      Alcotest.(check (list int)) "no feasible designs" []
        (List.map
           (fun s -> s.Integration.ii_main)
           report.Explore.outcome.Search.feasible))
    [ Explore.Enumeration; Explore.Iterative; Explore.Branch_bound ]

(* ------------------------------------------------------------------ *)
(* End-to-end robustness *)

let full_pipeline_never_crashes =
  QCheck.Test.make ~name:"random specs run the whole pipeline cleanly" ~count:25
    QCheck.(triple (8 -- 40) (0 -- 1000) (triple (1 -- 3) bool bool))
    (fun (ops, seed, (k, multicycle, pkg84)) ->
      let graph = Chop_dfg.Benchmarks.random_dag ~ops ~seed () in
      let levels = List.length (Chop_dfg.Analysis.levels graph) in
      let k = max 1 (min k levels) in
      let partitioning =
        if k = 1 then Chop_dfg.Partition.whole graph
        else Chop_dfg.Partition.by_levels graph ~k
      in
      let spec =
        Rig.custom ~graph ~partitioning
          ~package:(if pkg84 then Chop_tech.Mosis.package_84 else Chop_tech.Mosis.package_64)
          ~clocks:
            (Chop_tech.Clocking.make ~main:300.
               ~datapath_ratio:(if multicycle then 1 else 10)
               ~transfer_ratio:1)
          ~style:
            (Chop_tech.Style.both
               (if multicycle then Chop_tech.Style.Multi_cycle
                else Chop_tech.Style.Single_cycle))
          ~criteria:(Chop_bad.Feasibility.criteria ~perf:60000. ~delay:60000. ())
          ()
      in
      (* the whole pipeline: BAD -> both heuristics -> report -> simulate *)
      let ctx = Integration.context spec in
      List.for_all
        (fun h ->
          let report = explore_run h spec in
          List.for_all
            (fun s ->
              let text = Report.guideline spec s in
              let sim = Sysim.simulate ctx ~instances:4 s in
              (* the integration model budgets pins in aggregate; the greedy
                 simulator can fragment the packing, so random stress allows
                 50% slack (the curated sysim tests hold the strict 10%) *)
              String.length text > 0
              && sim.Sysim.first_latency > 0
              && Sysim.throughput_consistent ~tolerance:0.5 s sim)
            (Chop_util.Listx.take 2 report.Explore.outcome.Search.feasible))
        [ Explore.Enumeration; Explore.Iterative ])

(* ------------------------------------------------------------------ *)
(* Rig *)

let test_rig_uniform_chips () =
  let g = Chop_dfg.Benchmarks.ar_lattice_filter () in
  let pg = Chop_dfg.Partition.by_levels g ~k:3 in
  let chips, assignment = Rig.uniform_chips pg Chop_tech.Mosis.package_84 in
  Alcotest.(check int) "3 chips" 3 (List.length chips);
  Alcotest.(check int) "3 assignments" 3 (List.length assignment)

let test_rig_experiments_valid () =
  List.iter
    (fun k ->
      let s1 = exp1 k and s2 = exp2 k in
      Alcotest.(check int) "chips = partitions (exp1)" k (List.length s1.Spec.chips);
      Alcotest.(check int) "chips = partitions (exp2)" k (List.length s2.Spec.chips))
    [ 1; 2; 3 ]

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "chop_core"
    [
      ( "spec",
        [
          tc "builds" `Quick test_spec_builds;
          tc "rejects unassigned" `Quick test_spec_rejects_unassigned_partition;
          tc "rejects unknown chip" `Quick test_spec_rejects_unknown_chip;
          tc "rejects undeclared memory" `Quick test_spec_rejects_undeclared_memory;
          tc "rejects hostless memory" `Quick test_spec_rejects_hostless_onchip_memory;
          tc "accessors" `Quick test_spec_accessors;
        ] );
      ( "transfer",
        [
          tc "single partition io" `Quick test_transfer_single_partition;
          tc "two partitions" `Quick test_transfer_two_partitions;
          tc "same-chip flow" `Quick test_transfer_same_chip_flow_needs_no_pins;
          tc "control pins" `Quick test_transfer_control_pins;
          tc "memory lines" `Quick test_transfer_memory_lines;
          tc "chips_of" `Quick test_chips_of;
        ] );
      ( "integration",
        [
          tc "feasible combo" `Quick test_integration_feasible_combo;
          tc "rejects wrong combination" `Quick test_integration_rejects_wrong_combination;
          tc "rate mismatch" `Quick test_integration_rate_mismatch_detected;
          tc "buffer formula" `Quick test_integration_buffer_formula;
          tc "dtm on both chips" `Quick test_integration_dtm_on_both_chips;
          tc "memory resource" `Quick test_integration_memory_resource;
          tc "transfer clock floor" `Quick test_integration_transfer_clock_floor;
          tc "total area + objectives" `Quick test_total_area_and_objectives;
          tc "failure kinds" `Quick test_integration_failure_kinds;
          tc "structural pin exhaustion" `Quick test_integration_structural_pin_exhaustion;
          tc "shared remote memory" `Quick test_integration_shared_remote_memory;
        ] );
      ( "search",
        [
          tc "2 partitions faster (exp1 shape)" `Quick test_exp1_shape_two_partitions_faster;
          tc "exp2 beats exp1 (multi-cycle)" `Quick test_exp2_reaches_higher_performance;
          tc "enum and iter agree on best ii" `Quick test_enum_vs_iter_same_best_ii;
          tc "iter cheaper on large spaces" `Quick test_iter_fewer_trials_on_large_space;
          tc "bad stats" `Quick test_explore_bad_stats;
          tc "branch-and-bound matches enum" `Quick test_branch_bound_matches_enumeration;
          tc "branch-and-bound prunes" `Quick test_branch_bound_never_more_integrations;
          tc "keep-all explodes space" `Quick test_keep_all_explodes_space;
          tc "candidate intervals" `Quick test_candidate_intervals_within_constraint;
          tc "feasible sorted" `Quick test_feasible_sorted_fastest_first;
        ] );
      ( "report",
        [
          tc "guideline content" `Quick test_guideline_content;
          tc "summary row" `Quick test_summary_row;
          tc "timeline + csv" `Quick test_timeline_and_csv;
        ] );
      ( "advisor",
        [
          tc "what_if" `Quick test_advisor_what_if;
          tc "move partition" `Quick test_advisor_move_partition;
          tc "move operation" `Quick test_advisor_move_operation;
          tc "move rejects cycle" `Quick test_advisor_move_operation_rejects_cycle;
          tc "swap package" `Quick test_advisor_swap_package;
          tc "tight constraints infeasible" `Quick test_advisor_set_constraints_breaks_feasibility;
          tc "rehost memory" `Quick test_advisor_rehost_memory;
          tc "optimize memory hosts" `Quick test_advisor_optimize_memory_hosts;
          tc "compare specs" `Quick test_advisor_compare_specs;
        ] );
      ( "specfile",
        [
          tc "parse" `Quick test_specfile_parse;
          tc "roundtrip" `Quick test_specfile_roundtrip;
          tc "roundtrip experiment" `Quick test_specfile_roundtrip_experiment;
          tc "errors" `Quick test_specfile_errors;
          tc "line numbers" `Quick test_specfile_line_numbers;
          tc "load from file" `Quick test_specfile_load_from_file;
          tc "roundtrip all benchmarks" `Quick test_specfile_roundtrip_all_benchmarks;
          tc "duplicate keys rejected" `Quick test_specfile_duplicate_keys_rejected;
          tc "impl unknown model" `Quick test_specfile_impl_unknown_model;
          tc "processor/impl roundtrip" `Quick test_specfile_processor_impl_roundtrip;
        ] );
      ( "sysim",
        [
          tc "matches prediction" `Quick test_sysim_matches_prediction;
          tc "steady-state rate" `Quick test_sysim_steady_state_rate;
          tc "single instance" `Quick test_sysim_single_instance;
          tc "rejects failed integration" `Quick test_sysim_rejects_failed_integration;
          tc "validates instances" `Quick test_sysim_validates_instances;
        ] );
      ( "sensitivity",
        [
          tc "perf monotone" `Quick test_sensitivity_perf_monotone;
          tc "cliff" `Quick test_sensitivity_cliff;
          tc "pins" `Quick test_sensitivity_pins;
          tc "clock + delay" `Quick test_sensitivity_clock_and_delay;
          tc "render" `Quick test_sensitivity_render;
          tc "2d grid" `Quick test_sensitivity_grid;
        ] );
      ( "degenerate",
        [ tc "no viable partition" `Quick test_explore_with_no_viable_partition ] );
      ( "robustness",
        [ QCheck_alcotest.to_alcotest full_pipeline_never_crashes ] );
      ( "rig",
        [
          tc "uniform chips" `Quick test_rig_uniform_chips;
          tc "experiments valid" `Quick test_rig_experiments_valid;
        ] );
    ]
