(* Tests for chop_bad: data-path estimation, controller prediction,
   allocation enumeration, feasibility criteria and the BAD predictor. *)

open Chop_bad

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let ar () = Chop_dfg.Benchmarks.ar_lattice_filter ()

let clocks1 = Chop_tech.Clocking.make ~main:300. ~datapath_ratio:10 ~transfer_ratio:1
let clocks2 = Chop_tech.Clocking.make ~main:300. ~datapath_ratio:1 ~transfer_ratio:1

let cfg1 () =
  Predictor.config ~library:Chop_tech.Mosis.experiment_library ~clocks:clocks1
    ~style:(Chop_tech.Style.both Chop_tech.Style.Single_cycle) ()

let cfg2 () =
  Predictor.config ~library:Chop_tech.Mosis.experiment_library ~clocks:clocks2
    ~style:(Chop_tech.Style.both Chop_tech.Style.Multi_cycle) ()

let chip_area =
  Chop_tech.Chip.usable_area Chop_tech.Mosis.package_84 ~signal_pins:42

let criteria1 = Feasibility.criteria ~perf:30000. ~delay:30000. ()

let mset names =
  List.map (fun name -> Chop_tech.Component.find Chop_tech.Mosis.experiment_library ~name) names

(* ------------------------------------------------------------------ *)
(* Datapath *)

let sched alloc =
  Chop_sched.List_sched.run ~latency:(fun _ -> 1) ~alloc (ar ())

let test_datapath_estimate_positive () =
  let est = Datapath.estimate ~module_set:(mset [ "add2"; "mul2" ]) (sched [ ("add", 2); ("mult", 2) ]) in
  Alcotest.(check bool) "registers" true (est.Datapath.register_bits > 0);
  Alcotest.(check bool) "muxes" true (est.Datapath.mux_count > 0);
  Alcotest.(check bool) "nets" true (est.Datapath.nets > 0);
  Alcotest.(check (float 1e-6)) "fu area = 2 adders + 2 mults"
    ((2. *. 2880.) +. (2. *. 9800.)) est.Datapath.fu_area

let test_datapath_sharing_increases_muxes () =
  let shared = Datapath.estimate ~module_set:(mset [ "add2"; "mul2" ]) (sched [ ("add", 1); ("mult", 1) ]) in
  let parallel = Datapath.estimate ~module_set:(mset [ "add2"; "mul2" ]) (sched [ ("add", 12); ("mult", 16) ]) in
  Alcotest.(check bool) "more sharing, more muxes" true
    (shared.Datapath.mux_count > parallel.Datapath.mux_count)

let test_datapath_mux_select_delay () =
  let shared = Datapath.estimate ~module_set:(mset [ "add2"; "mul2" ]) (sched [ ("add", 1); ("mult", 1) ]) in
  Alcotest.(check bool) "tree delay present" true (shared.Datapath.mux_select_delay > 0.)

let test_datapath_register_area_consistent () =
  let est = Datapath.estimate ~module_set:(mset [ "add2"; "mul2" ]) (sched [ ("add", 2); ("mult", 2) ]) in
  Alcotest.(check (float 1e-6)) "31 mil^2 per bit"
    (float_of_int est.Datapath.register_bits *. 31.) est.Datapath.register_area

(* ------------------------------------------------------------------ *)
(* Control *)

let test_control_shape_states () =
  let s = sched [ ("add", 2); ("mult", 2) ] in
  let est = Datapath.estimate ~module_set:(mset [ "add2"; "mul2" ]) s in
  let seq = Control.shape ~sched:s ~est ~ii:4 ~pipelined:false in
  let pipe = Control.shape ~sched:s ~est ~ii:4 ~pipelined:true in
  (* a pipelined controller wraps at the initiation interval *)
  Alcotest.(check bool) "pipelined has fewer terms" true
    (pipe.Chop_tech.Pla.product_terms < seq.Chop_tech.Pla.product_terms);
  Alcotest.(check bool) "area positive" true (Control.area seq > 0.);
  Alcotest.(check bool) "delay positive" true (Control.delay seq > 0.)

(* ------------------------------------------------------------------ *)
(* Alloc_enum *)

let test_alloc_enum_box () =
  let allocs = Alloc_enum.enumerate ~cap:8 ~latency:(fun _ -> 1) ~memport_units:[] (ar ()) in
  (* add 1..3, mult 1..4 on the AR lattice *)
  Alcotest.(check int) "12 allocations" 12 (List.length allocs);
  List.iter (fun a -> Chop_sched.Schedule.validate_alloc a) allocs

let test_alloc_enum_cap () =
  let allocs = Alloc_enum.enumerate ~cap:2 ~latency:(fun _ -> 1) ~memport_units:[] (ar ()) in
  Alcotest.(check int) "capped to 2x2" 4 (List.length allocs);
  List.iter
    (fun a -> List.iter (fun (_, n) -> Alcotest.(check bool) "within cap" true (n <= 2)) a)
    allocs

let test_alloc_enum_memport () =
  let g = Chop_dfg.Benchmarks.memory_pipeline ~blocks:("A", "B") () in
  let units = [ ("memport:A", 2); ("memport:B", 1) ] in
  let allocs = Alloc_enum.enumerate ~cap:4 ~latency:(fun _ -> 1) ~memport_units:units g in
  List.iter
    (fun a ->
      Alcotest.(check int) "port A fixed" 2 (Chop_sched.Schedule.alloc_get a "memport:A");
      Alcotest.(check int) "port B fixed" 1 (Chop_sched.Schedule.alloc_get a "memport:B"))
    allocs;
  match Alloc_enum.enumerate ~cap:4 ~latency:(fun _ -> 1) ~memport_units:[] g with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "missing port declaration accepted for memory graph"

(* ------------------------------------------------------------------ *)
(* Feasibility *)

let test_criteria_defaults () =
  let c = Feasibility.criteria ~perf:1000. ~delay:2000. () in
  Alcotest.(check (float 1e-9)) "perf prob" 1.0 c.Feasibility.perf_prob;
  Alcotest.(check (float 1e-9)) "delay prob" 0.8 c.Feasibility.delay_prob;
  Alcotest.(check bool) "no power budget" true (c.Feasibility.power_budget = None)

let test_criteria_validates () =
  (match Feasibility.criteria ~perf:0. ~delay:1. () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "perf 0 accepted");
  match Feasibility.criteria ~perf_prob:1.5 ~perf:1. ~delay:1. () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "prob > 1 accepted"

let test_check_area () =
  let c = criteria1 in
  let small = Chop_util.Triplet.spread 100. in
  Alcotest.(check bool) "fits" true
    (Feasibility.is_feasible (Feasibility.check_area c ~available:1000. [ small ]));
  let big = Chop_util.Triplet.spread 2000. in
  Alcotest.(check bool) "overflows" false
    (Feasibility.is_feasible (Feasibility.check_area c ~available:1000. [ big ]))

let test_check_area_at_prob_boundary () =
  (* area_prob = 1.0 demands the upper bound fits *)
  let c = criteria1 in
  let t = Chop_util.Triplet.make ~low:500. ~likely:800. ~high:1100. in
  Alcotest.(check bool) "high > available fails" false
    (Feasibility.is_feasible (Feasibility.check_area c ~available:1000. [ t ]));
  let relaxed = Feasibility.criteria ~area_prob:0.5 ~perf:1. ~delay:1. () in
  Alcotest.(check bool) "relaxed passes" true
    (Feasibility.is_feasible (Feasibility.check_area relaxed ~available:1000. [ t ]))

let test_check_perf_delay_power () =
  let c = criteria1 in
  Alcotest.(check bool) "perf ok" true
    (Feasibility.is_feasible (Feasibility.check_perf c 30000.));
  Alcotest.(check bool) "perf bad" false
    (Feasibility.is_feasible (Feasibility.check_perf c 30001.));
  Alcotest.(check bool) "delay ok at 0.8" true
    (Feasibility.is_feasible
       (Feasibility.check_delay c (Chop_util.Triplet.make ~low:29000. ~likely:29500. ~high:30100.)));
  Alcotest.(check bool) "power unconstrained" true
    (Feasibility.is_feasible (Feasibility.check_power c 1e9));
  let pc = Feasibility.criteria ~power_budget:10. ~perf:1. ~delay:1. () in
  Alcotest.(check bool) "power bad" false
    (Feasibility.is_feasible (Feasibility.check_power pc 11.))

(* ------------------------------------------------------------------ *)
(* Predictor *)

let test_predict_counts_exp1 () =
  let preds = Predictor.predict (cfg1 ()) ~label:"P1" (ar ()) in
  (* 9 module sets x 12 allocations x styles: a few hundred predictions *)
  Alcotest.(check bool) "hundreds of predictions" true
    (List.length preds > 100 && List.length preds < 1000)

let test_predict_multicycle_finer () =
  let p1 = List.length (Predictor.predict (cfg1 ()) ~label:"P1" (ar ())) in
  let p2 = List.length (Predictor.predict (cfg2 ()) ~label:"P1" (ar ())) in
  Alcotest.(check bool) "multi-cycle explores more" true (p2 > p1)

let test_predict_empty_graph () =
  let b = Chop_dfg.Graph.builder () in
  let i = Chop_dfg.Graph.add_node b ~op:Chop_dfg.Op.Input ~width:8 in
  ignore i;
  let g = Chop_dfg.Graph.build b in
  Alcotest.(check int) "no ops, no predictions" 0
    (List.length (Predictor.predict (cfg1 ()) ~label:"X" g))

let test_predict_uncovered_library () =
  let cfg =
    Predictor.config ~library:[ Chop_tech.Mosis.register_cell ] ~clocks:clocks1
      ~style:(Chop_tech.Style.both Chop_tech.Style.Single_cycle) ()
  in
  Alcotest.(check int) "no coverage, no predictions" 0
    (List.length (Predictor.predict cfg ~label:"X" (ar ())))

let test_predict_undeclared_memory_rejected () =
  let g = Chop_dfg.Benchmarks.memory_pipeline ~blocks:("A", "B") () in
  match Predictor.predict (cfg1 ()) ~label:"X" g with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "undeclared memory accepted"

let test_predict_with_memories () =
  let m name =
    Chop_tech.Memory.make ~name ~words:64 ~word_width:16 ~ports:1 ~access:120.
      ~placement:(Chop_tech.Memory.On_chip 4000.)
  in
  let cfg =
    Predictor.config ~memories:[ m "A"; m "B" ]
      ~library:Chop_tech.Mosis.experiment_library ~clocks:clocks2
      ~style:(Chop_tech.Style.both Chop_tech.Style.Multi_cycle) ()
  in
  let g = Chop_dfg.Benchmarks.memory_pipeline ~blocks:("A", "B") () in
  let preds = Predictor.predict cfg ~label:"M" g in
  Alcotest.(check bool) "predictions exist" true (List.length preds > 0);
  let p = List.hd preds in
  Alcotest.(check bool) "memory bandwidth recorded" true
    (List.mem_assoc "A" p.Prediction.mem_bandwidth
    && List.mem_assoc "B" p.Prediction.mem_bandwidth)

let test_predictions_internally_consistent () =
  let preds = Predictor.predict (cfg1 ()) ~label:"P1" (ar ()) in
  List.iter
    (fun p ->
      Alcotest.(check bool) "ii <= latency" true
        (p.Prediction.timing.ii_dp <= p.Prediction.timing.latency_dp);
      Alcotest.(check bool) "clock >= main" true
        (p.Prediction.timing.clock_main >= 300.);
      Alcotest.(check bool) "area ordered" true
        Chop_util.Triplet.(p.Prediction.area.low <= p.Prediction.area.high);
      Alcotest.(check bool) "positive area" true
        Chop_util.Triplet.(p.Prediction.area.low > 0.);
      match p.Prediction.style with
      | Chop_tech.Style.Pipelined ->
          Alcotest.(check bool) "pipelined beats restart" true
            (p.Prediction.timing.ii_dp < p.Prediction.timing.latency_dp)
      | Chop_tech.Style.Non_pipelined ->
          Alcotest.(check int) "nonpipelined ii = latency"
            p.Prediction.timing.latency_dp p.Prediction.timing.ii_dp)
    preds

let test_single_cycle_clock_stretches () =
  (* a mul3-based single-cycle design cannot run at the nominal clock:
     7370 ns exceeds the 3000 ns data-path cycle *)
  let preds = Predictor.predict (cfg1 ()) ~label:"P1" (ar ()) in
  let mul3_preds =
    List.filter
      (fun p ->
        List.exists
          (fun c -> c.Chop_tech.Component.cname = "mul3")
          p.Prediction.module_set)
      preds
  in
  Alcotest.(check bool) "mul3 predictions exist" true (mul3_preds <> []);
  List.iter
    (fun p ->
      Alcotest.(check bool) "stretched clock" true
        (p.Prediction.timing.clock_main > 700.))
    mul3_preds

let test_prune_keeps_feasible_frontier () =
  let cfg = cfg1 () in
  let preds = Predictor.predict cfg ~label:"P1" (ar ()) in
  let kept = Predictor.prune cfg ~criteria:criteria1 ~chip_area preds in
  Alcotest.(check bool) "something survives" true (List.length kept > 0);
  Alcotest.(check bool) "prune shrinks" true (List.length kept < List.length preds);
  List.iter
    (fun p ->
      Alcotest.(check bool) "survivor is feasible" true
        (Feasibility.is_feasible
           (Feasibility.partition_level criteria1 ~clocks:clocks1 ~chip_area p)))
    kept

let test_testability_overhead_grows_area () =
  let plain = Predictor.predict (cfg1 ()) ~label:"P1" (ar ()) in
  let cfg_t =
    Predictor.config ~testability_overhead:0.15
      ~library:Chop_tech.Mosis.experiment_library ~clocks:clocks1
      ~style:(Chop_tech.Style.both Chop_tech.Style.Single_cycle) ()
  in
  let scanned = Predictor.predict cfg_t ~label:"P1" (ar ()) in
  let mean_area ps =
    Chop_util.Listx.sum_byf (fun p -> Chop_util.Triplet.mean p.Prediction.area) ps
    /. float_of_int (List.length ps)
  in
  Alcotest.(check bool) "scan costs ~15% area" true
    (mean_area scanned > 1.1 *. mean_area plain)

let test_describe_mentions_decisions () =
  let preds = Predictor.predict (cfg1 ()) ~label:"P1" (ar ()) in
  let text = Prediction.describe clocks1 (List.hd preds) in
  Alcotest.(check bool) "mentions style" true
    (contains text "design style");
  Alcotest.(check bool) "mentions registers" true
    (contains text "registers");
  Alcotest.(check bool) "mentions multiplexers" true
    (contains text "multiplexers")

let test_compare_speed_orders () =
  let preds = Predictor.predict (cfg1 ()) ~label:"P1" (ar ()) in
  let sorted = List.sort Prediction.compare_speed preds in
  let rec monotone = function
    | a :: (b :: _ as rest) ->
        a.Prediction.timing.ii_dp <= b.Prediction.timing.ii_dp && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "ascending ii" true (monotone sorted)

let test_force_directed_scheduler_option () =
  let cfg =
    Predictor.config ~scheduler:Predictor.Force_directed
      ~library:Chop_tech.Mosis.experiment_library ~clocks:clocks1
      ~style:(Chop_tech.Style.both Chop_tech.Style.Single_cycle) ()
  in
  let preds = Predictor.predict cfg ~label:"P1" (ar ()) in
  Alcotest.(check bool) "fds path produces predictions" true (List.length preds > 50);
  (* every prediction remains internally consistent *)
  List.iter
    (fun p ->
      Alcotest.(check bool) "ii <= latency" true
        (p.Prediction.timing.ii_dp <= p.Prediction.timing.latency_dp))
    preds

let test_chaining_improves_single_cycle () =
  let plain = cfg1 () in
  let chained =
    Chop_bad.Predictor.config ~chaining:true
      ~library:Chop_tech.Mosis.experiment_library ~clocks:clocks1
      ~style:(Chop_tech.Style.both Chop_tech.Style.Single_cycle) ()
  in
  let best cfg =
    Chop_bad.Predictor.predict cfg ~label:"P1" (ar ())
    |> List.fold_left
         (fun acc p -> min acc p.Chop_bad.Prediction.timing.Chop_bad.Prediction.latency_dp)
         max_int
  in
  Alcotest.(check bool) "chaining reaches shorter latencies" true
    (best chained < best plain)

(* ------------------------------------------------------------------ *)
(* Software model *)

let cpu ?(name = "cpu") ?(issue = 4) ?(mem = 4096.) () =
  Chop_model_sw.Processor.make ~name ~issue_slots:issue ~cycle_ns:300.
    ~code_bytes_per_op:4 ~data_bytes_per_value:2 ~memory_budget_bytes:mem
    ~bus_bits:16

let test_sw_predict_one_per_width () =
  let preds =
    Chop_model_sw.Sw_predict.predict (cpu ()) ~clocks:clocks2 ~label:"S" (ar ())
  in
  Alcotest.(check int) "one prediction per issue width" 4 (List.length preds);
  List.iteri
    (fun i p ->
      Alcotest.(check int) "issue width recorded" (i + 1)
        (List.assoc "issue" p.Prediction.alloc);
      Alcotest.(check int) "sequential execution: ii = latency"
        p.Prediction.timing.latency_dp p.Prediction.timing.ii_dp;
      Alcotest.(check (float 1e-9)) "system clock untouched" 300.
        p.Prediction.timing.clock_main;
      Alcotest.(check bool) "footprint is exact" true
        Chop_util.Triplet.(p.Prediction.area.low = p.Prediction.area.high))
    preds

let test_sw_wider_issue_shortens_schedule () =
  let preds =
    Chop_model_sw.Sw_predict.predict (cpu ()) ~clocks:clocks2 ~label:"S" (ar ())
  in
  let iis = List.map (fun p -> p.Prediction.timing.ii_dp) preds in
  let rec weakly_dec = function
    | a :: (b :: _ as rest) -> a >= b && weakly_dec rest
    | _ -> true
  in
  Alcotest.(check bool) "cycle count weakly decreases with width" true
    (weakly_dec iis);
  Alcotest.(check bool) "width 4 strictly beats width 1" true
    (List.nth iis 3 < List.hd iis)

let test_sw_footprint_is_code_plus_data () =
  let p = cpu () in
  let sub = ar () in
  List.iteri
    (fun i pr ->
      let cycles = pr.Prediction.timing.ii_dp in
      let code, data =
        Chop_model_sw.Sw_predict.footprint_bytes p ~issue:(i + 1) ~cycles sub
      in
      Alcotest.(check (float 1e-9)) "area triplet carries code+data bytes"
        (float_of_int (code + data))
        pr.Prediction.area.Chop_util.Triplet.likely;
      Alcotest.(check int) "register bits mirror the data bytes" (data * 8)
        pr.Prediction.register_bits)
    (Chop_model_sw.Sw_predict.predict p ~clocks:clocks2 ~label:"S" sub)

let test_sw_budget_screens_footprint () =
  let model mem = Chop.Model.Software (cpu ~mem ()) in
  let cfg = cfg2 () in
  let preds = Chop.Model.predict (model 4096.) cfg ~label:"S" (ar ()) in
  Alcotest.(check bool) "predictions exist" true (preds <> []);
  Alcotest.(check bool) "a roomy budget keeps an implementation" true
    (Chop.Model.prune (model 4096.) cfg ~criteria:criteria1 ~capacity:4096.
       preds
    <> []);
  Alcotest.(check int) "a 32-byte budget keeps none" 0
    (List.length
       (Chop.Model.prune (model 32.) cfg ~criteria:criteria1 ~capacity:32.
          preds))

let test_cache_keys_disjoint_across_models () =
  let sub = ar () in
  let cfg = cfg1 () in
  let id model =
    Chop.Pred_cache.Key.raw_id (Chop.Pred_cache.Key.raw ~sub ~cfg ~model)
  in
  let hw = id Chop.Model.Hardware in
  let sw = id (Chop.Model.Software (cpu ())) in
  Alcotest.(check bool) "hardware and software keys never collide" true
    (hw <> sw);
  Alcotest.(check bool) "processor parameters are cache identity" true
    (sw <> id (Chop.Model.Software (cpu ~issue:2 ())));
  Alcotest.(check string) "equal processors, equal keys" sw
    (id (Chop.Model.Software (cpu ())));
  (* content addressing holds within each model: a renumbered isomorphic
     graph probes the same entry *)
  let renum = Chop_dfg.Transform.renumber sub in
  let id' model =
    Chop.Pred_cache.Key.raw_id
      (Chop.Pred_cache.Key.raw ~sub:renum ~cfg ~model)
  in
  Alcotest.(check string) "hw key is structural" hw (id' Chop.Model.Hardware);
  Alcotest.(check string) "sw key is structural" sw
    (id' (Chop.Model.Software (cpu ())))

let predictor_deterministic =
  QCheck.Test.make ~name:"predictor is deterministic" ~count:5
    QCheck.(0 -- 3)
    (fun k ->
      let g =
        if k = 0 then ar () else Chop_dfg.Benchmarks.fir_filter ~taps:(4 + k) ()
      in
      let a = Predictor.predict (cfg1 ()) ~label:"X" g in
      let b = Predictor.predict (cfg1 ()) ~label:"X" g in
      List.length a = List.length b)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "chop_bad"
    [
      ( "datapath",
        [
          tc "estimate positive" `Quick test_datapath_estimate_positive;
          tc "sharing increases muxes" `Quick test_datapath_sharing_increases_muxes;
          tc "mux select delay" `Quick test_datapath_mux_select_delay;
          tc "register area" `Quick test_datapath_register_area_consistent;
        ] );
      ("control", [ tc "shape" `Quick test_control_shape_states ]);
      ( "alloc_enum",
        [
          tc "box" `Quick test_alloc_enum_box;
          tc "cap" `Quick test_alloc_enum_cap;
          tc "memport" `Quick test_alloc_enum_memport;
        ] );
      ( "feasibility",
        [
          tc "defaults" `Quick test_criteria_defaults;
          tc "validates" `Quick test_criteria_validates;
          tc "check area" `Quick test_check_area;
          tc "area probability boundary" `Quick test_check_area_at_prob_boundary;
          tc "perf/delay/power" `Quick test_check_perf_delay_power;
        ] );
      ( "predictor",
        [
          tc "counts (exp 1)" `Quick test_predict_counts_exp1;
          tc "multi-cycle finer" `Quick test_predict_multicycle_finer;
          tc "empty graph" `Quick test_predict_empty_graph;
          tc "uncovered library" `Quick test_predict_uncovered_library;
          tc "undeclared memory" `Quick test_predict_undeclared_memory_rejected;
          tc "with memories" `Quick test_predict_with_memories;
          tc "internally consistent" `Quick test_predictions_internally_consistent;
          tc "single-cycle clock stretch" `Quick test_single_cycle_clock_stretches;
          tc "prune" `Quick test_prune_keeps_feasible_frontier;
          tc "testability overhead" `Quick test_testability_overhead_grows_area;
          tc "describe" `Quick test_describe_mentions_decisions;
          tc "compare_speed" `Quick test_compare_speed_orders;
          tc "force-directed scheduler" `Quick test_force_directed_scheduler_option;
          tc "chaining improves single-cycle" `Quick test_chaining_improves_single_cycle;
          QCheck_alcotest.to_alcotest predictor_deterministic;
        ] );
      ( "software model",
        [
          tc "one prediction per issue width" `Quick
            test_sw_predict_one_per_width;
          tc "wider issue shortens schedule" `Quick
            test_sw_wider_issue_shortens_schedule;
          tc "footprint is code+data" `Quick test_sw_footprint_is_code_plus_data;
          tc "budget screens footprint" `Quick test_sw_budget_screens_footprint;
          tc "cache keys disjoint across models" `Quick
            test_cache_keys_disjoint_across_models;
        ] );
    ]
