(* Dominance pre-pruning: the proof obligations of lib/core/prune.ml.

   The pruning invariant is that dropping an implementation dominated by an
   interchangeable sibling (same style / initiation interval / latency /
   memory-bandwidth signature) cannot change the best feasible design, the
   feasible Pareto front, or any feasibility verdict of the combination
   search.  These tests check the invariant three ways: unit tests on
   Pareto.reduce, benchmark-level agreement of pre-pruned vs exhaustive
   searches, and a randomized property over generated specifications. *)

open Chop
open Chop_util

(* ------------------------------------------------------------------ *)
(* Pareto.reduce *)

let test_reduce_drops_dominated () =
  let kept, dropped =
    Pareto.reduce ~objectives:(fun x -> x) [ [| 1.; 1. |]; [| 2.; 2. |] ]
  in
  Alcotest.(check int) "dropped" 1 dropped;
  Alcotest.(check int) "kept" 1 (List.length kept);
  Alcotest.(check bool) "kept the dominant" true (List.hd kept = [| 1.; 1. |])

let test_reduce_collapses_ties () =
  (* frontier keeps both copies of a tied vector; reduce keeps only the
     first occurrence *)
  let tied = [ [| 1.; 2. |]; [| 2.; 1. |]; [| 1.; 2. |] ] in
  let front = Pareto.frontier ~objectives:(fun x -> x) tied in
  Alcotest.(check int) "frontier keeps ties" 3 (List.length front);
  let kept, dropped = Pareto.reduce ~objectives:(fun x -> x) tied in
  Alcotest.(check int) "reduce collapses ties" 2 (List.length kept);
  Alcotest.(check int) "one tie dropped" 1 dropped

let test_reduce_preserves_order () =
  let xs = [ [| 3.; 1. |]; [| 1.; 3. |]; [| 2.; 2. |] ] in
  let kept, dropped = Pareto.reduce ~objectives:(fun x -> x) xs in
  Alcotest.(check int) "nothing dominated" 0 dropped;
  Alcotest.(check bool) "original order" true (kept = xs)

let test_reduce_counts =
  QCheck.Test.make ~name:"reduce: kept + dropped = total, kept undominated"
    ~count:100
    QCheck.(list_of_size Gen.(0 -- 20) (pair (0 -- 5) (0 -- 5)))
    (fun pts ->
      let xs = List.map (fun (a, b) -> [| float a; float b |]) pts in
      let kept, dropped = Pareto.reduce ~objectives:(fun x -> x) xs in
      List.length kept + dropped = List.length xs
      && List.for_all
           (fun k ->
             not (List.exists (fun o -> o != k && Pareto.dominates o k) kept))
           kept)

(* ------------------------------------------------------------------ *)
(* Prune.per_partition bookkeeping on real prediction lists *)

let engine_run ~heuristic ~pre_prune spec =
  Explore.with_engine
    (Explore.Config.make ~heuristic ~pre_prune ~cache:Explore.Config.Off ())
    spec Explore.Engine.run

let engine_predictions ?prune spec =
  Explore.with_engine
    (Explore.Config.make ?prune ~cache:Explore.Config.Off ())
    spec Explore.Engine.predictions

let test_prune_bookkeeping () =
  let spec = Rig.experiment1 ~partitions:2 () in
  (* first-level pruning off: dominance pruning should then have work to
     do on AR (the keep-all search path feeds it exactly these lists) *)
  let per_partition, _ = engine_predictions ~prune:false spec in
  let kept, dropped =
    Prune.per_partition ~clocks:spec.Spec.clocks per_partition
  in
  let count lists = Listx.sum_by (fun (_, ps) -> List.length ps) lists in
  Alcotest.(check int) "kept + dropped = total"
    (count per_partition)
    (count kept + dropped);
  Alcotest.(check bool) "something was pruned on AR" true (dropped > 0);
  List.iter2
    (fun (label, orig) (label', remaining) ->
      Alcotest.(check string) "labels aligned" label label';
      (* every kept implementation is one of the originals, in order *)
      let rec subsequence xs ys =
        match (xs, ys) with
        | [], _ -> true
        | _, [] -> false
        | x :: xs', y :: ys' ->
            if x == y then subsequence xs' ys' else subsequence xs ys'
      in
      Alcotest.(check bool)
        (label ^ ": kept is a subsequence")
        true
        (subsequence remaining orig))
    per_partition kept

(* ------------------------------------------------------------------ *)
(* Benchmark-level agreement: the search sees the same feasible front,
   the same best design and the same verdict with pruning on or off *)

let multi_cycle_spec ?(perf = 20000.) ?(delay = 20000.) graph ~k =
  let partitioning =
    if k = 1 then Chop_dfg.Partition.whole graph
    else Chop_dfg.Partition.by_levels graph ~k
  in
  Rig.custom ~graph ~partitioning ~package:Chop_tech.Mosis.package_84
    ~clocks:
      (Chop_tech.Clocking.make ~main:300. ~datapath_ratio:1 ~transfer_ratio:1)
    ~style:(Chop_tech.Style.both Chop_tech.Style.Multi_cycle)
    ~criteria:(Chop_bad.Feasibility.criteria ~perf ~delay ())
    ()

let agreement_specs () =
  [
    ("ewf", multi_cycle_spec (Chop_dfg.Benchmarks.elliptic_wave_filter ()) ~k:2);
    ("ar", Rig.experiment1 ~partitions:2 ());
    ( "fir8",
      multi_cycle_spec
        (Chop_dfg.Benchmarks.fir_filter ~taps:8 ())
        ~k:2 ~perf:30000. ~delay:30000. );
    ( "diffeq",
      multi_cycle_spec (Chop_dfg.Benchmarks.diffeq ()) ~k:2 ~perf:30000.
        ~delay:30000. );
  ]

let check_agreement name heuristic spec =
  let pruned = engine_run ~heuristic ~pre_prune:true spec in
  let full = engine_run ~heuristic ~pre_prune:false spec in
  let front r = Search.to_csv r.Explore.outcome.Search.feasible in
  Alcotest.(check string)
    (name ^ ": identical feasible Pareto front")
    (front full) (front pruned);
  Alcotest.(check bool)
    (name ^ ": identical feasibility verdict")
    (full.Explore.outcome.Search.feasible <> [])
    (pruned.Explore.outcome.Search.feasible <> []);
  let trials r =
    r.Explore.outcome.Search.stats.Search.implementation_trials
  in
  Alcotest.(check bool)
    (name ^ ": pruning never adds work")
    true
    (trials pruned <= trials full);
  Alcotest.(check bool)
    (name ^ ": pruned count reported")
    true
    (pruned.Explore.metrics.Explore.Metrics.pruned_impls >= 0
    && full.Explore.metrics.Explore.Metrics.pruned_impls = 0)

let test_agreement_enumeration () =
  List.iter
    (fun (name, spec) -> check_agreement name Explore.Enumeration spec)
    (agreement_specs ())

let test_agreement_branch_bound () =
  check_agreement "ar" Explore.Branch_bound (Rig.experiment1 ~partitions:2 ())

(* ------------------------------------------------------------------ *)
(* quick_check soundness: a combination rejected without integration must
   genuinely integrate to an infeasible system *)

let test_quick_check_sound () =
  let spec = Rig.experiment1 ~partitions:2 () in
  let per_partition, _ = engine_predictions spec in
  let ctx = Integration.context spec in
  let cache = Integration.cache ctx in
  let rejected = ref 0 in
  let rec walk acc = function
    | [] ->
        let comb = List.rev acc in
        if Integration.quick_check cache comb then begin
          incr rejected;
          Alcotest.(check bool) "quick_check rejection is infeasible" false
            (Integration.feasible (Integration.integrate_cached cache comb))
        end
    | (label, preds) :: rest ->
        (* sample the head/middle/last picks to keep the walk small *)
        let n = List.length preds in
        List.iter
          (fun i -> walk ((label, List.nth preds i) :: acc) rest)
          (List.sort_uniq compare [ 0; n / 2; n - 1 ])
  in
  walk [] per_partition;
  Alcotest.(check bool) "exercised at least one rejection" true (!rejected >= 0)

(* ------------------------------------------------------------------ *)
(* Randomized property: on generated specs, pre-pruning changes neither
   the feasible front nor any verdict *)

let prune_agreement_random =
  QCheck.Test.make ~name:"pre-pruning preserves the feasible front" ~count:8
    QCheck.(pair (12 -- 32) (0 -- 1000))
    (fun (ops, seed) ->
      let graph = Chop_dfg.Benchmarks.random_dag ~ops ~seed () in
      let k = 1 + (seed mod 3) in
      let spec = multi_cycle_spec graph ~k ~perf:100000. ~delay:100000. in
      let pruned = engine_run ~heuristic:Explore.Enumeration ~pre_prune:true spec in
      let full = engine_run ~heuristic:Explore.Enumeration ~pre_prune:false spec in
      Search.to_csv pruned.Explore.outcome.Search.feasible
      = Search.to_csv full.Explore.outcome.Search.feasible
      && (pruned.Explore.outcome.Search.feasible <> [])
         = (full.Explore.outcome.Search.feasible <> []))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "chop_prune"
    [
      ( "pareto",
        [
          Alcotest.test_case "reduce drops dominated" `Quick
            test_reduce_drops_dominated;
          Alcotest.test_case "reduce collapses ties" `Quick
            test_reduce_collapses_ties;
          Alcotest.test_case "reduce preserves order" `Quick
            test_reduce_preserves_order;
          QCheck_alcotest.to_alcotest test_reduce_counts;
        ] );
      ( "prune",
        [
          Alcotest.test_case "per-partition bookkeeping" `Quick
            test_prune_bookkeeping;
        ] );
      ( "agreement",
        [
          Alcotest.test_case "benchmarks, enumeration" `Quick
            test_agreement_enumeration;
          Alcotest.test_case "ar, branch-and-bound" `Quick
            test_agreement_branch_bound;
          Alcotest.test_case "quick_check soundness" `Quick
            test_quick_check_sound;
          QCheck_alcotest.to_alcotest prune_agreement_random;
        ] );
    ]
