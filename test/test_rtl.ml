(* Tests for chop_rtl: resource binding, netlist construction, the Verilog
   dump and prediction-vs-synthesis validation. *)

let ar () = Chop_dfg.Benchmarks.ar_lattice_filter ()

(* one-shot helpers over a fresh session (the deprecated wrappers are gone) *)
let explore_run heuristic spec =
  Chop.Explore.with_engine
    (Chop.Explore.Config.make ~heuristic ())
    spec Chop.Explore.Engine.run

let explore_predictions spec =
  Chop.Explore.with_engine Chop.Explore.Config.default spec
    Chop.Explore.Engine.predictions


let sched ?(g = ar ()) alloc =
  Chop_sched.List_sched.run ~latency:(fun _ -> 1) ~alloc g

let mset names =
  List.map
    (fun name -> Chop_tech.Component.find Chop_tech.Mosis.experiment_library ~name)
    names

let clocks1 = Chop_tech.Clocking.make ~main:300. ~datapath_ratio:10 ~transfer_ratio:1

let cfg1 () =
  Chop_bad.Predictor.config ~library:Chop_tech.Mosis.experiment_library
    ~clocks:clocks1 ~style:(Chop_tech.Style.both Chop_tech.Style.Single_cycle) ()

(* ------------------------------------------------------------------ *)
(* Binding *)

let test_fu_binding_respects_alloc () =
  let s = sched [ ("add", 2); ("mult", 3) ] in
  let binding = Chop_rtl.Binding.bind_functional_units s in
  Alcotest.(check int) "every op bound" 28 (List.length binding);
  List.iter
    (fun (_, b) ->
      let cap = Chop_sched.Schedule.alloc_get s.Chop_sched.Schedule.alloc b.Chop_rtl.Binding.fu_class in
      Alcotest.(check bool) "instance within allocation" true
        (b.Chop_rtl.Binding.fu_index < cap))
    binding

let test_fu_binding_no_overlap () =
  let s = sched [ ("add", 2); ("mult", 2) ] in
  let binding = Chop_rtl.Binding.bind_functional_units s in
  (* two ops on the same instance must not overlap in time *)
  List.iter
    (fun (id1, b1) ->
      List.iter
        (fun (id2, b2) ->
          if id1 < id2 && b1 = b2 then begin
            let s1 = Chop_sched.Schedule.start s id1
            and f1 = Chop_sched.Schedule.finish s id1
            and s2 = Chop_sched.Schedule.start s id2
            and f2 = Chop_sched.Schedule.finish s id2 in
            Alcotest.(check bool) "disjoint occupancy" true (f1 <= s2 || f2 <= s1)
          end)
        binding)
    binding

let test_value_intervals_positive () =
  let s = sched [ ("add", 2); ("mult", 2) ] in
  let ivs = Chop_rtl.Binding.value_intervals s in
  Alcotest.(check bool) "some intervals" true (List.length ivs > 10);
  List.iter
    (fun iv ->
      Alcotest.(check bool) "death after birth" true
        (iv.Chop_rtl.Binding.death > iv.Chop_rtl.Binding.birth))
    ivs

let test_register_binding_disjoint_lifetimes () =
  let s = sched [ ("add", 2); ("mult", 2) ] in
  let assignment, count = Chop_rtl.Binding.bind_registers s in
  Alcotest.(check bool) "registers used" true (count > 0);
  let ivs = Chop_rtl.Binding.value_intervals s in
  let interval_of p =
    List.find (fun iv -> iv.Chop_rtl.Binding.producer = p) ivs
  in
  List.iter
    (fun (p1, r1) ->
      List.iter
        (fun (p2, r2) ->
          if p1 < p2 && r1 = r2 then begin
            let a = interval_of p1 and b = interval_of p2 in
            Alcotest.(check bool) "sharing implies disjoint" true
              (a.Chop_rtl.Binding.death <= b.Chop_rtl.Binding.birth
              || b.Chop_rtl.Binding.death <= a.Chop_rtl.Binding.birth)
          end)
        assignment)
    assignment

let test_register_count_matches_lifetime_peak () =
  (* left-edge on interval graphs is optimal: register count = peak number
     of simultaneously live values = BAD's lifetime prediction *)
  let s = sched [ ("add", 3); ("mult", 4) ] in
  let _, count = Chop_rtl.Binding.bind_registers s in
  let demand = Chop_sched.Lifetime.analyze s in
  Alcotest.(check int) "bits agree" demand.Chop_sched.Lifetime.register_bits
    (count * 16)

let binding_valid_on_random_dags =
  QCheck.Test.make ~name:"binding is consistent on random dags" ~count:30
    QCheck.(pair (5 -- 30) (0 -- 300))
    (fun (ops, seed) ->
      let g = Chop_dfg.Benchmarks.random_dag ~ops ~seed () in
      let alloc = List.map (fun (c, _) -> (c, 2)) (Chop_dfg.Graph.op_profile g) in
      let s = Chop_sched.List_sched.run ~latency:(fun _ -> 1) ~alloc g in
      let binding = Chop_rtl.Binding.bind_functional_units s in
      let assignment, count = Chop_rtl.Binding.bind_registers s in
      List.length binding = ops
      && List.for_all (fun (_, r) -> r < count) assignment)

(* ------------------------------------------------------------------ *)
(* Synth / Netlist *)

let test_netlist_structure () =
  let s = sched [ ("add", 2); ("mult", 2) ] in
  let nl = Chop_rtl.Synth.netlist ~module_set:(mset [ "add2"; "mul2" ]) s in
  Alcotest.(check int) "4 FUs" 4 (List.length nl.Chop_rtl.Netlist.fus);
  Alcotest.(check bool) "registers" true (nl.Chop_rtl.Netlist.registers.Chop_rtl.Netlist.count > 0);
  Alcotest.(check bool) "muxes" true (Chop_rtl.Netlist.mux_bits nl > 0);
  Alcotest.(check int) "fsm states = schedule length"
    s.Chop_sched.Schedule.length nl.Chop_rtl.Netlist.controller.Chop_rtl.Netlist.states;
  Alcotest.(check bool) "connections" true
    (List.length nl.Chop_rtl.Netlist.connections > 10)

let test_netlist_area_positive_and_reasonable () =
  let s = sched [ ("add", 2); ("mult", 2) ] in
  let nl = Chop_rtl.Synth.netlist ~module_set:(mset [ "add2"; "mul2" ]) s in
  let area = Chop_rtl.Netlist.cell_area nl in
  (* at least the functional units *)
  Alcotest.(check bool) "at least FU area" true (area >= (2. *. 2880.) +. (2. *. 9800.));
  Alcotest.(check bool) "below the die" true (area < 112000.)

let test_netlist_missing_class_rejected () =
  let s = sched [ ("add", 2); ("mult", 2) ] in
  match Chop_rtl.Synth.netlist ~module_set:(mset [ "add2" ]) s with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "missing multiplier accepted"

let test_netlist_port_fanin_bounded_by_sharing () =
  (* a port mux can never select among more sources than the operations the
     unit hosts; with a single multiplier, port steering must exist.
     (Interestingly, the *register file* damps serial fan-in: short
     lifetimes collapse many sources onto few registers — one reason BAD's
     mux prediction is only approximate, which Validate quantifies.) *)
  List.iter
    (fun alloc ->
      let s = sched alloc in
      let binding = Chop_rtl.Binding.bind_functional_units s in
      let nl = Chop_rtl.Synth.netlist ~module_set:(mset [ "add2"; "mul2" ]) s in
      List.iter
        (fun f ->
          let hosted =
            List.length
              (List.filter
                 (fun (_, b) ->
                   Printf.sprintf "%s_%d" b.Chop_rtl.Binding.fu_class
                     b.Chop_rtl.Binding.fu_index
                   = f.Chop_rtl.Netlist.fu_name)
                 binding)
          in
          List.iter
            (fun m ->
              Alcotest.(check bool) "fanin <= hosted ops" true
                (m.Chop_rtl.Netlist.fanin <= hosted))
            f.Chop_rtl.Netlist.port_muxes)
        nl.Chop_rtl.Netlist.fus)
    [ [ ("add", 1); ("mult", 1) ]; [ ("add", 2); ("mult", 3) ] ];
  let serial = Chop_rtl.Synth.netlist ~module_set:(mset [ "add2"; "mul2" ]) (sched [ ("add", 1); ("mult", 1) ]) in
  Alcotest.(check bool) "single units still steer" true
    (List.exists (fun f -> f.Chop_rtl.Netlist.port_muxes <> []) serial.Chop_rtl.Netlist.fus)

let test_netlist_pipelined_folding () =
  let s = sched [ ("add", 3); ("mult", 4) ] in
  let seq = Chop_rtl.Synth.netlist ~module_set:(mset [ "add2"; "mul2" ]) s in
  let ii = Chop_sched.Pipeline.min_ii s in
  if ii < s.Chop_sched.Schedule.length then begin
    let pipe = Chop_rtl.Synth.netlist ~ii ~module_set:(mset [ "add2"; "mul2" ]) s in
    Alcotest.(check bool) "folded register file at least as large" true
      (pipe.Chop_rtl.Netlist.registers.Chop_rtl.Netlist.count
      >= seq.Chop_rtl.Netlist.registers.Chop_rtl.Netlist.count);
    Alcotest.(check int) "controller wraps at ii" ii
      pipe.Chop_rtl.Netlist.controller.Chop_rtl.Netlist.states
  end;
  match Chop_rtl.Synth.netlist ~ii:0 ~module_set:(mset [ "add2"; "mul2" ]) s with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "ii 0 accepted"

let test_netlist_memory_ops () =
  let g = Chop_dfg.Benchmarks.memory_pipeline ~blocks:("A", "B") () in
  let alloc =
    List.map
      (fun (c, _) -> (c, 1))
      (Chop_dfg.Graph.op_profile g)
  in
  let s = Chop_sched.List_sched.run ~latency:(fun _ -> 1) ~alloc g in
  let nl = Chop_rtl.Synth.netlist ~module_set:(mset [ "add2"; "mul2" ]) s in
  (* memory ports synthesize to the memory interface, not FUs *)
  Alcotest.(check int) "2 datapath FUs" 2 (List.length nl.Chop_rtl.Netlist.fus)

(* ------------------------------------------------------------------ *)
(* Verilog *)

let test_verilog_emission () =
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    nn = 0 || go 0
  in
  let s = sched [ ("add", 2); ("mult", 2) ] in
  let nl = Chop_rtl.Synth.netlist ~name:"ar demo!" ~module_set:(mset [ "add2"; "mul2" ]) s in
  let v = Chop_rtl.Verilog.emit nl in
  Alcotest.(check bool) "module header sanitized" true (contains v "module ar_demo_");
  Alcotest.(check bool) "registers declared" true (contains v "reg [15:0] reg0;");
  Alcotest.(check bool) "endmodule" true (contains v "endmodule");
  Alcotest.(check bool) "controller" true (contains v "assign done")

(* ------------------------------------------------------------------ *)
(* Floorplan *)

let test_floorplan_covers_blocks () =
  let s = sched [ ("add", 2); ("mult", 2) ] in
  let nl = Chop_rtl.Synth.netlist ~module_set:(mset [ "add2"; "mul2" ]) s in
  let blocks = Chop_rtl.Floorplan.blocks_of_netlist nl in
  (* 4 FUs + register file + steering + controller *)
  Alcotest.(check int) "7 blocks" 7 (List.length blocks);
  let fp = Chop_rtl.Floorplan.plan ~core_width:300. ~core_height:340. blocks in
  Alcotest.(check int) "all placed" 7 (List.length fp.Chop_rtl.Floorplan.placements);
  Alcotest.(check bool) "utilization sane" true
    (fp.Chop_rtl.Floorplan.utilization > 0. && fp.Chop_rtl.Floorplan.utilization <= 1.)

let test_floorplan_placements_inside_and_disjoint () =
  let s = sched [ ("add", 2); ("mult", 2) ] in
  let nl = Chop_rtl.Synth.netlist ~module_set:(mset [ "add2"; "mul2" ]) s in
  let fp =
    Chop_rtl.Floorplan.plan ~core_width:300. ~core_height:340.
      (Chop_rtl.Floorplan.blocks_of_netlist nl)
  in
  let eps = 1e-6 in
  List.iter
    (fun p ->
      let open Chop_rtl.Floorplan in
      Alcotest.(check bool) "inside core" true
        (p.x >= -.eps && p.y >= -.eps
        && p.x +. p.w <= 300. +. eps
        && p.y +. p.h <= 340. +. eps);
      (* a leaf's rectangle is at least its block's area *)
      Alcotest.(check bool) "area sufficient" true
        (p.w *. p.h +. eps >= p.block.block_area))
    fp.Chop_rtl.Floorplan.placements;
  (* pairwise disjoint *)
  let open Chop_rtl.Floorplan in
  List.iteri
    (fun i p1 ->
      List.iteri
        (fun j p2 ->
          if i < j then
            Alcotest.(check bool) "disjoint" true
              (p1.x +. p1.w <= p2.x +. eps
              || p2.x +. p2.w <= p1.x +. eps
              || p1.y +. p1.h <= p2.y +. eps
              || p2.y +. p2.h <= p1.y +. eps))
        fp.placements)
    fp.placements

let test_floorplan_rejects_overflow () =
  let blocks = [ { Chop_rtl.Floorplan.block_name = "big"; block_area = 1e6 } ] in
  match Chop_rtl.Floorplan.plan ~core_width:100. ~core_height:100. blocks with
  | exception Chop_rtl.Floorplan.Does_not_fit _ -> ()
  | _ -> Alcotest.fail "overflow accepted"

let test_floorplan_validates () =
  (match Chop_rtl.Floorplan.plan ~core_width:0. ~core_height:10. [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad core accepted");
  match
    Chop_rtl.Floorplan.plan ~core_width:10. ~core_height:10. []
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty blocks accepted"

let test_floorplan_on_package () =
  let s = sched [ ("add", 2); ("mult", 2) ] in
  let nl = Chop_rtl.Synth.netlist ~module_set:(mset [ "add2"; "mul2" ]) s in
  (match Chop_rtl.Floorplan.on_package Chop_tech.Mosis.package_84 nl with
  | Ok fp ->
      Alcotest.(check bool) "fits the 84-pin die" true
        (fp.Chop_rtl.Floorplan.utilization <= 1.)
  | Error e -> Alcotest.fail e);
  (* a design too big for the die must be rejected gracefully *)
  let huge = sched [ ("add", 3); ("mult", 4) ] in
  let nl2 = Chop_rtl.Synth.netlist ~module_set:(mset [ "add1"; "mul1" ]) huge in
  match Chop_rtl.Floorplan.on_package Chop_tech.Mosis.package_84 nl2 with
  | Ok _ -> Alcotest.fail "4 x mul1 cannot fit a MOSIS die"
  | Error _ -> ()

let floorplan_random_netlists =
  QCheck.Test.make ~name:"floorplans are consistent on random designs" ~count:20
    QCheck.(pair (6 -- 25) (0 -- 200))
    (fun (ops, seed) ->
      let g = Chop_dfg.Benchmarks.random_dag ~ops ~seed () in
      let alloc = List.map (fun (c, _) -> (c, 2)) (Chop_dfg.Graph.op_profile g) in
      let s = Chop_sched.List_sched.run ~latency:(fun _ -> 1) ~alloc g in
      let nl = Chop_rtl.Synth.netlist ~module_set:(mset [ "add3"; "mul3" ]) s in
      match Chop_rtl.Floorplan.on_package Chop_tech.Mosis.package_84 nl with
      | Ok fp ->
          List.length fp.Chop_rtl.Floorplan.placements
          = List.length (Chop_rtl.Floorplan.blocks_of_netlist nl)
      | Error _ -> true (* too big is a legal outcome *))

(* ------------------------------------------------------------------ *)
(* Validate *)

let nonpipelined_predictions () =
  let cfg = cfg1 () in
  let preds = Chop_bad.Predictor.predict cfg ~label:"P1" (ar ()) in
  ( cfg,
    List.filter
      (fun p -> p.Chop_bad.Prediction.style = Chop_tech.Style.Non_pipelined)
      preds )

let test_validate_pipelined_registers () =
  (* pipelined predictions now validate too: the synthesized register file
     is folded at the prediction's initiation interval *)
  let cfg = cfg1 () in
  let preds = Chop_bad.Predictor.predict cfg ~label:"P1" (ar ()) in
  let pipelined =
    List.filter
      (fun p -> p.Chop_bad.Prediction.style = Chop_tech.Style.Pipelined)
      preds
  in
  List.iter
    (fun p ->
      let c = Chop_rtl.Validate.compare_with cfg p (ar ()) in
      Alcotest.(check int) "register bits exact (folded)"
        c.Chop_rtl.Validate.predicted_register_bits
        c.Chop_rtl.Validate.actual_register_bits)
    (Chop_util.Listx.take 6 pipelined)

let test_validate_registers_exact () =
  (* BAD's register prediction equals left-edge binding for non-pipelined
     designs: lifetime peak = interval-graph chromatic number *)
  let cfg, preds = nonpipelined_predictions () in
  List.iter
    (fun p ->
      let c = Chop_rtl.Validate.compare_with cfg p (ar ()) in
      Alcotest.(check int) "register bits exact"
        c.Chop_rtl.Validate.predicted_register_bits
        c.Chop_rtl.Validate.actual_register_bits)
    (Chop_util.Listx.take 8 preds)

let test_validate_area_bounded () =
  let cfg, preds = nonpipelined_predictions () in
  List.iter
    (fun p ->
      let c = Chop_rtl.Validate.compare_with cfg p (ar ()) in
      Alcotest.(check bool) "actual cell area within predicted bound" true
        c.Chop_rtl.Validate.area_within_bounds)
    (Chop_util.Listx.take 8 preds)

let test_validate_mux_error_moderate () =
  let cfg, preds = nonpipelined_predictions () in
  List.iter
    (fun p ->
      let c = Chop_rtl.Validate.compare_with cfg p (ar ()) in
      Alcotest.(check bool) "mux error within 60%" true
        (Float.abs c.Chop_rtl.Validate.mux_error <= 0.6))
    (Chop_util.Listx.take 8 preds)

let test_accuracy_report_renders () =
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    nn = 0 || go 0
  in
  let cfg, preds = nonpipelined_predictions () in
  let text = Chop_rtl.Validate.accuracy_report cfg (ar ()) (Chop_util.Listx.take 4 preds) in
  Alcotest.(check bool) "mean error line" true (contains text "mean absolute error")

(* ------------------------------------------------------------------ *)
(* Rtlsim *)

let ar_consts g v =
  List.filter_map
    (fun n ->
      if n.Chop_dfg.Graph.op = Chop_dfg.Op.Const then Some (n.Chop_dfg.Graph.name, v)
      else None)
    (Chop_dfg.Graph.nodes g)

let test_rtlsim_matches_eval () =
  let g = ar () in
  let inputs = [ ("f_in", 37); ("b_in", 113) ] in
  let consts = ar_consts g 3 in
  let reference =
    List.sort compare (Chop_dfg.Eval.run ~inputs ~consts g)
  in
  List.iter
    (fun alloc ->
      let s = Chop_sched.List_sched.run ~latency:(fun _ -> 1) ~alloc g in
      let got = List.sort compare (Chop_rtl.Rtlsim.run ~inputs ~consts s) in
      Alcotest.(check (list (pair string int))) "bound datapath = behavior"
        reference got)
    [ [ ("add", 1); ("mult", 1) ]; [ ("add", 2); ("mult", 3) ];
      [ ("add", 12); ("mult", 16) ] ]

let test_rtlsim_multicycle () =
  let g = ar () in
  let inputs = [ ("f_in", 5); ("b_in", 9) ] in
  let consts = ar_consts g 2 in
  let latency n =
    if n.Chop_dfg.Graph.op = Chop_dfg.Op.Mult then 3 else 1
  in
  let s = Chop_sched.List_sched.run ~latency ~alloc:[ ("add", 2); ("mult", 2) ] g in
  Alcotest.(check (list (pair string int))) "multicycle binding"
    (List.sort compare (Chop_dfg.Eval.run ~inputs ~consts g))
    (List.sort compare (Chop_rtl.Rtlsim.run ~inputs ~consts s))

let test_rtlsim_memory () =
  let g = Chop_dfg.Benchmarks.memory_pipeline ~blocks:("A", "B") () in
  let alloc = List.map (fun (c, _) -> (c, 1)) (Chop_dfg.Graph.op_profile g) in
  let s = Chop_sched.List_sched.run ~latency:(fun _ -> 1) ~alloc g in
  let memory = Chop_dfg.Eval.constant_memory 7 in
  let got = Chop_rtl.Rtlsim.run ~consts:(ar_consts g 2) ~memory s in
  Alcotest.(check (list (pair string int))) "acc" [ ("y", 28) ] got;
  Alcotest.(check (list (pair string int))) "write recorded" [ ("B", 28) ]
    memory.Chop_dfg.Eval.writes

let rtlsim_equals_eval_on_random =
  QCheck.Test.make ~name:"bound execution equals functional evaluation"
    ~count:60
    QCheck.(triple (5 -- 35) (0 -- 500) (pair (1 -- 3) (0 -- 4095)))
    (fun (ops, seed, (units, stim)) ->
      let g = Chop_dfg.Benchmarks.random_dag ~ops ~seed () in
      let alloc = List.map (fun (c, _) -> (c, units)) (Chop_dfg.Graph.op_profile g) in
      let s = Chop_sched.List_sched.run ~latency:(fun _ -> 1) ~alloc g in
      let inputs =
        List.map
          (fun n -> (n.Chop_dfg.Graph.name, (stim + n.Chop_dfg.Graph.id) land 0xfff))
          (Chop_dfg.Graph.inputs g)
      in
      List.sort compare (Chop_dfg.Eval.run ~inputs g)
      = List.sort compare (Chop_rtl.Rtlsim.run ~inputs s))

(* ------------------------------------------------------------------ *)
(* System *)

let test_system_synthesis_fits () =
  let spec = Chop.Rig.experiment1 ~partitions:2 () in
  let ctx = Chop.Integration.context spec in
  let report = explore_run Chop.Explore.Iterative spec in
  match report.Chop.Explore.outcome.Chop.Search.feasible with
  | [] -> Alcotest.fail "expected a feasible system"
  | best :: _ ->
      let sys = Chop_rtl.System.synthesize ctx best in
      Alcotest.(check int) "two chips" 2 (List.length sys.Chop_rtl.System.chips);
      Alcotest.(check bool) "every chip floorplans" true
        (Chop_rtl.System.all_fit sys);
      List.iter
        (fun cd ->
          Alcotest.(check int) "one PU per chip" 1
            (List.length cd.Chop_rtl.System.pu_netlists);
          Alcotest.(check bool) "has transfer modules" true
            (cd.Chop_rtl.System.dtms <> []);
          (* a CHOP-feasible chip must synthesize below its usable area *)
          Alcotest.(check bool) "cell area below usable" true
            (cd.Chop_rtl.System.total_cell_area
            < Chop_tech.Chip.project_area cd.Chop_rtl.System.package))
        sys.Chop_rtl.System.chips;
      Alcotest.(check int) "verilog per chip" 2
        (List.length sys.Chop_rtl.System.verilog)

let test_system_multi_partition_chip () =
  (* Figure 2 style: two partitions on one chip synthesize to two PUs *)
  let g = Chop_dfg.Benchmarks.ar_lattice_filter () in
  let pg = Chop_dfg.Partition.by_levels g ~k:2 in
  let spec =
    Chop.Spec.make ~graph:g ~library:Chop_tech.Mosis.experiment_library
      ~chips:[ { Chop.Spec.chip_name = "c"; package = Chop_tech.Mosis.package_84 } ]
      ~partitioning:pg
      ~assignment:[ ("P1", "c"); ("P2", "c") ]
      ~clocks:(Chop_tech.Clocking.make ~main:300. ~datapath_ratio:10 ~transfer_ratio:1)
      ~style:(Chop_tech.Style.both Chop_tech.Style.Single_cycle)
      ~criteria:(Chop_bad.Feasibility.criteria ~perf:30000. ~delay:30000. ())
      ()
  in
  let ctx = Chop.Integration.context spec in
  let report = explore_run Chop.Explore.Iterative spec in
  match report.Chop.Explore.outcome.Chop.Search.feasible with
  | [] -> () (* both halves on one die may simply not fit: a legal outcome *)
  | best :: _ ->
      let sys = Chop_rtl.System.synthesize ctx best in
      let cd = List.hd sys.Chop_rtl.System.chips in
      Alcotest.(check int) "two PUs on the chip" 2
        (List.length cd.Chop_rtl.System.pu_netlists)

let test_system_rejects_failed_integration () =
  let spec = Chop.Rig.experiment1 ~partitions:2 () in
  let ctx = Chop.Integration.context spec in
  let per_partition, _ = explore_predictions spec in
  let comb = List.map (fun (l, ps) -> (l, List.hd ps)) per_partition in
  let broken = Chop.Integration.integrate ctx ~ii_target:0 comb in
  if broken.Chop.Integration.chip_reports = [] then
    match Chop_rtl.System.synthesize ctx broken with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "failed integration synthesized"

let test_system_summary_renders () =
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    nn = 0 || go 0
  in
  let spec = Chop.Rig.experiment1 ~partitions:2 () in
  let ctx = Chop.Integration.context spec in
  let report = explore_run Chop.Explore.Iterative spec in
  match report.Chop.Explore.outcome.Chop.Search.feasible with
  | [] -> Alcotest.fail "expected a feasible system"
  | best :: _ ->
      let sys = Chop_rtl.System.synthesize ctx best in
      let text = Chop_rtl.System.summary sys in
      Alcotest.(check bool) "mentions chips" true (contains text "chip1")

let test_system_board_verilog () =
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    nn = 0 || go 0
  in
  let spec = Chop.Rig.experiment1 ~partitions:2 () in
  let ctx = Chop.Integration.context spec in
  let report = explore_run Chop.Explore.Iterative spec in
  match report.Chop.Explore.outcome.Chop.Search.feasible with
  | [] -> Alcotest.fail "expected a feasible system"
  | best :: _ ->
      let sys = Chop_rtl.System.synthesize ctx best in
      let top = Chop_rtl.System.board_verilog ctx best sys in
      Alcotest.(check bool) "module header" true
        (contains top "module ar_lattice_filter_board");
      Alcotest.(check bool) "buses declared" true (contains top "_bus;");
      Alcotest.(check bool) "chips instantiated" true (contains top "chip_chip1");
      Alcotest.(check bool) "handshake" true (contains top "_req, ")

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "chop_rtl"
    [
      ( "binding",
        [
          tc "fu binding respects alloc" `Quick test_fu_binding_respects_alloc;
          tc "fu binding no overlap" `Quick test_fu_binding_no_overlap;
          tc "value intervals" `Quick test_value_intervals_positive;
          tc "register sharing disjoint" `Quick test_register_binding_disjoint_lifetimes;
          tc "register count = lifetime peak" `Quick test_register_count_matches_lifetime_peak;
          QCheck_alcotest.to_alcotest binding_valid_on_random_dags;
        ] );
      ( "synth",
        [
          tc "structure" `Quick test_netlist_structure;
          tc "area sane" `Quick test_netlist_area_positive_and_reasonable;
          tc "missing class rejected" `Quick test_netlist_missing_class_rejected;
          tc "port fanin bounded by sharing" `Quick test_netlist_port_fanin_bounded_by_sharing;
          tc "pipelined folding" `Quick test_netlist_pipelined_folding;
          tc "memory ops" `Quick test_netlist_memory_ops;
        ] );
      ("verilog", [ tc "emission" `Quick test_verilog_emission ]);
      ( "floorplan",
        [
          tc "covers blocks" `Quick test_floorplan_covers_blocks;
          tc "inside + disjoint" `Quick test_floorplan_placements_inside_and_disjoint;
          tc "rejects overflow" `Quick test_floorplan_rejects_overflow;
          tc "validates" `Quick test_floorplan_validates;
          tc "on package" `Quick test_floorplan_on_package;
          QCheck_alcotest.to_alcotest floorplan_random_netlists;
        ] );
      ( "rtlsim",
        [
          tc "matches eval" `Quick test_rtlsim_matches_eval;
          tc "multicycle" `Quick test_rtlsim_multicycle;
          tc "memory" `Quick test_rtlsim_memory;
          QCheck_alcotest.to_alcotest rtlsim_equals_eval_on_random;
        ] );
      ( "system",
        [
          tc "synthesis fits" `Quick test_system_synthesis_fits;
          tc "multi-partition chip" `Quick test_system_multi_partition_chip;
          tc "rejects failed integration" `Quick test_system_rejects_failed_integration;
          tc "summary" `Quick test_system_summary_renders;
          tc "board verilog" `Quick test_system_board_verilog;
        ] );
      ( "validate",
        [
          tc "registers exact" `Quick test_validate_registers_exact;
          tc "pipelined registers exact" `Quick test_validate_pipelined_registers;
          tc "area bounded" `Quick test_validate_area_bounded;
          tc "mux error moderate" `Quick test_validate_mux_error_moderate;
          tc "report renders" `Quick test_accuracy_report_renders;
        ] );
    ]
