(* Tests for the Chop_util.Json codec: escapes, the int/float
   distinction, nesting, positional errors, accessors, and the QCheck
   round-trip law [parse (print v) = Ok v]. *)

open Chop_util

let json =
  Alcotest.testable
    (fun ppf v -> Format.pp_print_string ppf (Json.print v))
    ( = )

let parse_ok s =
  match Json.parse s with
  | Ok v -> v
  | Error msg -> Alcotest.failf "parse %S failed: %s" s msg

let parse_err s =
  match Json.parse s with
  | Ok _ -> Alcotest.failf "parse %S unexpectedly succeeded" s
  | Error msg -> msg

let check_parse name expected input =
  Alcotest.check json name expected (parse_ok input)

(* ------------------------------------------------------------------ *)
(* Printing and escapes *)

let test_print_scalars () =
  Alcotest.(check string) "null" "null" (Json.print Json.Null);
  Alcotest.(check string) "true" "true" (Json.print (Json.Bool true));
  Alcotest.(check string) "false" "false" (Json.print (Json.Bool false));
  Alcotest.(check string) "int" "42" (Json.print (Json.Int 42));
  Alcotest.(check string) "negative int" "-7" (Json.print (Json.Int (-7)));
  Alcotest.(check string) "string" "\"hi\"" (Json.print (Json.String "hi"))

let test_print_escapes () =
  Alcotest.(check string) "quote and backslash" {|"a\"b\\c"|}
    (Json.print (Json.String {|a"b\c|}));
  Alcotest.(check string) "named escapes" {|"\n\r\t\b\f"|}
    (Json.print (Json.String "\n\r\t\b\012"));
  Alcotest.(check string) "control byte" {|"\u0001"|}
    (Json.print (Json.String "\001"));
  (* bytes outside the control range pass through untouched *)
  Alcotest.(check string) "utf8 passthrough" "\"\xc3\xa9\""
    (Json.print (Json.String "\xc3\xa9"))

let test_print_floats () =
  Alcotest.(check string) "short repr" "0.1" (Json.print (Json.Float 0.1));
  Alcotest.(check string) "stays float" "1.0" (Json.print (Json.Float 1.));
  Alcotest.(check string) "negative" "-2.5" (Json.print (Json.Float (-2.5)));
  List.iter
    (fun f ->
      Alcotest.check_raises "non-finite"
        (Invalid_argument
           "Json.print: non-finite floats have no JSON representation")
        (fun () -> ignore (Json.print (Json.Float f))))
    [ Float.nan; Float.infinity; Float.neg_infinity ]

let test_print_containers () =
  Alcotest.(check string) "empty array" "[]" (Json.print (Json.Array []));
  Alcotest.(check string) "empty object" "{}" (Json.print (Json.Object []));
  Alcotest.(check string) "no whitespace" {|{"a":[1,true,null],"b":"x"}|}
    (Json.print
       (Json.Object
          [
            ("a", Json.Array [ Json.Int 1; Json.Bool true; Json.Null ]);
            ("b", Json.String "x");
          ]))

let test_print_hum_reparses () =
  let v =
    Json.Object
      [
        ("nested", Json.Array [ Json.Object [ ("k", Json.Int 1) ]; Json.Null ]);
        ("s", Json.String "line\nbreak");
        ("f", Json.Float 2.75);
      ]
  in
  Alcotest.check json "print_hum round-trips" v (parse_ok (Json.print_hum v))

(* ------------------------------------------------------------------ *)
(* Parsing *)

let test_parse_escapes () =
  check_parse "named escapes" (Json.String "\n\r\t\b\012\"\\/")
    {|"\n\r\t\b\f\"\\\/"|};
  check_parse "ascii \\u" (Json.String "A") {|"\u0041"|};
  check_parse "two-byte utf8" (Json.String "\xc3\xa9") {|"\u00e9"|};
  check_parse "three-byte utf8" (Json.String "\xe2\x82\xac") {|"\u20ac"|};
  check_parse "surrogate pair" (Json.String "\xf0\x9f\x98\x80")
    {|"\ud83d\ude00"|}

let test_parse_escape_errors () =
  let contains needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "unpaired high surrogate" true
    (contains "unpaired high surrogate" (parse_err {|"\ud83d"|}));
  Alcotest.(check bool) "unpaired low surrogate" true
    (contains "unpaired low surrogate" (parse_err {|"\ude00"|}));
  Alcotest.(check bool) "invalid escape" true
    (contains "invalid escape" (parse_err {|"\q"|}));
  Alcotest.(check bool) "unescaped control byte" true
    (contains "unescaped control byte" (parse_err "\"a\nb\""));
  Alcotest.(check bool) "unterminated string" true
    (contains "unterminated string" (parse_err "\"abc"))

let test_parse_numbers () =
  check_parse "int" (Json.Int 42) "42";
  check_parse "negative zero int" (Json.Int 0) "-0";
  check_parse "max int" (Json.Int max_int) (string_of_int max_int);
  check_parse "min int" (Json.Int min_int) (string_of_int min_int);
  check_parse "fraction is float" (Json.Float 1.5) "1.5";
  check_parse "exponent is float" (Json.Float 1000.) "1e3";
  check_parse "signed exponent" (Json.Float 0.025) "2.5e-2";
  check_parse "negative float" (Json.Float (-0.5)) "-0.5";
  (* a literal beyond the int range degrades to Float, not an error *)
  check_parse "beyond int range" (Json.Float 1e19) "10000000000000000000"

let test_parse_number_errors () =
  List.iter
    (fun s -> ignore (parse_err s))
    [ "-"; "1."; ".5"; "1e"; "1e+"; "01x" ]

let test_parse_nesting () =
  check_parse "mixed nesting"
    (Json.Object
       [
         ( "a",
           Json.Array
             [
               Json.Object [ ("b", Json.Array [ Json.Int 1; Json.Int 2 ]) ];
               Json.Null;
             ] );
       ])
    {| { "a" : [ { "b" : [ 1 , 2 ] } , null ] } |};
  (* deep recursion: 200 levels of array nesting both ways *)
  let deep = ref (Json.Int 0) in
  for _ = 1 to 200 do
    deep := Json.Array [ !deep ]
  done;
  Alcotest.check json "deep nesting" !deep (parse_ok (Json.print !deep))

let test_parse_duplicate_keys () =
  let v = parse_ok {|{"k":1,"k":2}|} in
  Alcotest.check json "both fields kept"
    (Json.Object [ ("k", Json.Int 1); ("k", Json.Int 2) ])
    v;
  Alcotest.(check (option int)) "member returns the first" (Some 1)
    (Option.bind (Json.member "k" v) Json.to_int_opt)

let test_parse_positions () =
  let starts_with prefix s =
    String.length s >= String.length prefix
    && String.sub s 0 (String.length prefix) = prefix
  in
  Alcotest.(check bool) "offset in message" true
    (starts_with "offset 5:" (parse_err {|[1,2,x]|}));
  Alcotest.(check bool) "trailing input" true
    (starts_with "offset 3:" (parse_err "{} x"));
  Alcotest.(check bool) "truncated literal" true
    (String.length (parse_err "tru") > 0);
  Alcotest.(check bool) "empty input" true
    (starts_with "offset 0:" (parse_err ""))

let test_accessors () =
  let v = parse_ok {|{"s":"x","i":3,"f":2.0,"b":true,"l":[1]}|} in
  let get name = Option.get (Json.member name v) in
  Alcotest.(check (option string)) "string" (Some "x")
    (Json.to_string_opt (get "s"));
  Alcotest.(check (option bool)) "bool" (Some true)
    (Json.to_bool_opt (get "b"));
  Alcotest.(check (option int)) "int" (Some 3) (Json.to_int_opt (get "i"));
  Alcotest.(check (option int)) "integral float as int" (Some 2)
    (Json.to_int_opt (get "f"));
  Alcotest.(check (option int)) "fractional float is not an int" None
    (Json.to_int_opt (Json.Float 2.5));
  Alcotest.(check (option (float 0.))) "int as float" (Some 3.)
    (Json.to_float_opt (get "i"));
  Alcotest.(check (option int)) "list length" (Some 1)
    (Option.map List.length (Json.to_list_opt (get "l")));
  Alcotest.(check (option string)) "member on non-object" None
    (Option.bind (Json.member "s" (Json.Int 1)) Json.to_string_opt)

(* ------------------------------------------------------------------ *)
(* QCheck: the round-trip law *)

let json_gen =
  let open QCheck.Gen in
  (* arbitrary bytes: the printer passes non-control bytes through and
     escapes the rest, so any OCaml string must survive the trip *)
  let str = string_size (0 -- 8) ~gen:char in
  let scalar =
    frequency
      [
        (1, return Json.Null);
        (2, map (fun b -> Json.Bool b) bool);
        (3, map (fun i -> Json.Int i) int);
        ( 3,
          map
            (fun f -> Json.Float (if Float.is_finite f then f else 0.))
            float );
        (3, map (fun s -> Json.String s) str);
      ]
  in
  sized
  @@ fix (fun self n ->
         if n <= 0 then scalar
         else
           frequency
             [
               (3, scalar);
               ( 2,
                 map
                   (fun vs -> Json.Array vs)
                   (list_size (0 -- 4) (self (n / 2))) );
               ( 2,
                 map
                   (fun fields -> Json.Object fields)
                   (list_size (0 -- 4) (pair str (self (n / 2)))) );
             ])

let arbitrary_json = QCheck.make ~print:Json.print json_gen

let roundtrip_compact =
  QCheck.Test.make ~name:"parse (print v) = v" ~count:500 arbitrary_json
    (fun v -> Json.parse (Json.print v) = Ok v)

let roundtrip_hum =
  QCheck.Test.make ~name:"parse (print_hum v) = v" ~count:200 arbitrary_json
    (fun v -> Json.parse (Json.print_hum v) = Ok v)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "chop_util json"
    [
      ( "print",
        [
          Alcotest.test_case "scalars" `Quick test_print_scalars;
          Alcotest.test_case "escapes" `Quick test_print_escapes;
          Alcotest.test_case "floats" `Quick test_print_floats;
          Alcotest.test_case "containers" `Quick test_print_containers;
          Alcotest.test_case "print_hum reparses" `Quick
            test_print_hum_reparses;
        ] );
      ( "parse",
        [
          Alcotest.test_case "escapes" `Quick test_parse_escapes;
          Alcotest.test_case "escape errors" `Quick test_parse_escape_errors;
          Alcotest.test_case "numbers" `Quick test_parse_numbers;
          Alcotest.test_case "number errors" `Quick test_parse_number_errors;
          Alcotest.test_case "nesting" `Quick test_parse_nesting;
          Alcotest.test_case "duplicate keys" `Quick
            test_parse_duplicate_keys;
          Alcotest.test_case "error positions" `Quick test_parse_positions;
          Alcotest.test_case "accessors" `Quick test_accessors;
        ] );
      ( "roundtrip",
        [
          QCheck_alcotest.to_alcotest roundtrip_compact;
          QCheck_alcotest.to_alcotest roundtrip_hum;
        ] );
    ]
