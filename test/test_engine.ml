(* Tests for the exploration engine: Config/Engine API, parallel
   determinism (jobs=1 vs jobs=4 must produce identical outcomes), the
   engine lifecycle, the timing metrics and the memoized prediction
   cache. *)

open Chop

(* The paper's experiment-1 AR lattice filter, two partitions. *)
let ar_spec () = Rig.experiment1 ~partitions:2 ()

(* The elliptic wave filter under experiment-2-style conditions (the
   bench's secondary workload), two partitions. *)
let ewf_spec () =
  let graph = Chop_dfg.Benchmarks.elliptic_wave_filter () in
  Rig.custom ~graph
    ~partitioning:(Chop_dfg.Partition.by_levels graph ~k:2)
    ~package:Chop_tech.Mosis.package_84
    ~clocks:
      (Chop_tech.Clocking.make ~main:300. ~datapath_ratio:1 ~transfer_ratio:1)
    ~style:(Chop_tech.Style.both Chop_tech.Style.Multi_cycle)
    ~criteria:(Chop_bad.Feasibility.criteria ~perf:20000. ~delay:20000. ())
    ()

let run_with ?(cache = Explore.Config.Off) ?(keep_all = false) ~heuristic
    ~jobs spec =
  Explore.with_engine
    (Explore.Config.make ~heuristic ~keep_all ~jobs ~cache ())
    spec Explore.Engine.run

(* ------------------------------------------------------------------ *)
(* Determinism: any jobs value must yield the identical outcome *)

let check_determinism ~heuristic ~keep_all spec_of () =
  let r1 = run_with ~heuristic ~keep_all ~jobs:1 (spec_of ()) in
  let r4 = run_with ~heuristic ~keep_all ~jobs:4 (spec_of ()) in
  Alcotest.(check string) "feasible csv"
    (Search.to_csv r1.Explore.outcome.Search.feasible)
    (Search.to_csv r4.Explore.outcome.Search.feasible);
  Alcotest.(check string) "explored csv"
    (Search.to_csv r1.Explore.outcome.Search.explored)
    (Search.to_csv r4.Explore.outcome.Search.explored);
  let s1 = r1.Explore.outcome.Search.stats
  and s4 = r4.Explore.outcome.Search.stats in
  Alcotest.(check int) "trials" s1.Search.implementation_trials
    s4.Search.implementation_trials;
  Alcotest.(check int) "integrations" s1.Search.integrations
    s4.Search.integrations;
  Alcotest.(check int) "feasible trials" s1.Search.feasible_trials
    s4.Search.feasible_trials;
  Alcotest.(check int) "jobs recorded" 4 r4.Explore.jobs

(* jobs must also not disturb the default one-shot session results *)
let check_matches_legacy ~heuristic spec_of () =
  let legacy =
    Explore.with_engine
      (Explore.Config.make ~heuristic ())
      (spec_of ()) Explore.Engine.run
  in
  let engine = run_with ~heuristic ~jobs:4 (spec_of ()) in
  Alcotest.(check string) "feasible csv"
    (Search.to_csv legacy.Explore.outcome.Search.feasible)
    (Search.to_csv engine.Explore.outcome.Search.feasible)

(* feasible_trials must count feasible *integrations* (the sequential
   searches' semantics), not the final front size.  Hand-count by
   integrating every combination of the pruned prediction lists — the
   searches skip hopeless stems, but those are infeasible by construction
   (their performance lower bound already breaks the constraint), so the
   counts must agree. *)
let check_feasible_trials_hand_count ~jobs () =
  let spec = ar_spec () in
  (* pre-pruning and quick_check both drop only *infeasible-or-dominated*
     work, but the hand count below integrates the full product, so run
     the engine on the same full product ([pre_prune:false]; quick_check
     rejections are still fine — they are infeasible by construction) *)
  let config =
    Explore.Config.make ~heuristic:Explore.Enumeration ~prune:true
      ~pre_prune:false ~jobs ~cache:Explore.Config.Off ()
  in
  Explore.with_engine config spec @@ fun engine ->
  let per_partition, _ = Explore.Engine.predictions engine in
  let ctx = Explore.Engine.context engine in
  let labels = List.map fst per_partition in
  let hand_count = ref 0 in
  (match List.map snd per_partition with
  | [] -> ()
  | lists ->
      Chop_util.Listx.fold_cartesian
        (fun () picks ->
          let system = Integration.integrate ctx (List.combine labels picks) in
          if Integration.feasible system then incr hand_count)
        () lists);
  Alcotest.(check bool) "spec produces feasible systems" true (!hand_count > 0);
  let r = Explore.Engine.run engine in
  Alcotest.(check int) "feasible_trials equals hand count" !hand_count
    r.Explore.outcome.Search.stats.Search.feasible_trials;
  (* and it differs from the deduplicated Pareto front, the quantity the
     parallel merge used to report by mistake *)
  Alcotest.(check bool) "front size is not the trial count" true
    (List.length r.Explore.outcome.Search.feasible <> !hand_count)

(* ------------------------------------------------------------------ *)
(* Engine lifecycle *)

let test_close_idempotent () =
  let engine = Explore.Engine.create Explore.Config.default (ar_spec ()) in
  Explore.Engine.close engine;
  Explore.Engine.close engine

let test_run_after_close_raises () =
  let engine =
    Explore.Engine.create (Explore.Config.make ~jobs:2 ()) (ar_spec ())
  in
  let _ = Explore.Engine.run engine in
  Explore.Engine.close engine;
  (match Explore.Engine.run engine with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "run on a closed engine succeeded");
  match Explore.Engine.predictions engine with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "predictions on a closed engine succeeded"

let test_with_engine_closes_on_raise () =
  let saved = ref None in
  (match
     Explore.with_engine Explore.Config.default (ar_spec ()) (fun e ->
         saved := Some e;
         failwith "boom")
   with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "exception swallowed");
  match !saved with
  | None -> Alcotest.fail "with_engine never called its body"
  | Some e -> (
      match Explore.Engine.run e with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "engine left open after with_engine raised")

let test_engine_reuse_after_runs () =
  (* a persistent pool must survive many runs on the same engine *)
  let config = Explore.Config.make ~jobs:3 () in
  Explore.with_engine config (ar_spec ()) @@ fun engine ->
  let first = Explore.Engine.run engine in
  for _ = 1 to 3 do
    let again = Explore.Engine.run engine in
    Alcotest.(check string) "stable across reruns"
      (Search.to_csv first.Explore.outcome.Search.feasible)
      (Search.to_csv again.Explore.outcome.Search.feasible)
  done

(* ------------------------------------------------------------------ *)
(* Prediction cache *)

let test_cache_second_run_hits () =
  let spec = ar_spec () in
  let cache = Pred_cache.create () in
  let config = Explore.Config.make ~cache:(Explore.Config.Custom cache) () in
  Explore.with_engine config spec @@ fun engine ->
  let r1 = Explore.Engine.run engine in
  Alcotest.(check int) "first run misses every partition" 2
    r1.Explore.cache_misses;
  Alcotest.(check int) "first run has no hits" 0 r1.Explore.cache_hits;
  let r2 = Explore.Engine.run engine in
  Alcotest.(check int) "second run hits every partition" 2
    r2.Explore.cache_hits;
  Alcotest.(check int) "second run misses nothing" 0 r2.Explore.cache_misses;
  Alcotest.(check string) "cached outcome identical"
    (Search.to_csv r1.Explore.outcome.Search.feasible)
    (Search.to_csv r2.Explore.outcome.Search.feasible)

let test_cache_matches_uncached () =
  let spec = ewf_spec () in
  let heuristic = Explore.Enumeration in
  let cached =
    run_with ~cache:(Explore.Config.Custom (Pred_cache.create ())) ~heuristic
      ~jobs:1 spec
  in
  let uncached = run_with ~heuristic ~jobs:1 spec in
  Alcotest.(check string) "same feasible front"
    (Search.to_csv uncached.Explore.outcome.Search.feasible)
    (Search.to_csv cached.Explore.outcome.Search.feasible);
  Alcotest.(check int) "uncached engine counts misses" 2
    uncached.Explore.cache_misses;
  Alcotest.(check int) "uncached engine never hits" 0 uncached.Explore.cache_hits

let test_cache_raw_layer_survives_criteria_change () =
  (* moving a feasibility constraint must reuse the raw BAD enumeration:
     the full-entry key changes but the raw layer still hits *)
  let spec = ar_spec () in
  let cache = Pred_cache.create () in
  let config = Explore.Config.make ~cache:(Explore.Config.Custom cache) () in
  let r1 = Explore.with_engine config spec Explore.Engine.run in
  Alcotest.(check int) "cold run misses" 2 r1.Explore.cache_misses;
  let relaxed =
    Advisor.set_constraints spec
      ~criteria:(Chop_bad.Feasibility.criteria ~perf:60000. ~delay:60000. ())
  in
  let r2 = Explore.with_engine config relaxed Explore.Engine.run in
  Alcotest.(check int) "constraint change still hits raw layer" 2
    r2.Explore.cache_hits;
  Alcotest.(check int) "no re-prediction" 0 r2.Explore.cache_misses

let test_cache_relabels_predictions () =
  (* two structurally identical partitions on identical chips share cache
     entries, but each must see its own label on the predictions *)
  let graph = Chop_dfg.Benchmarks.fir_filter ~taps:8 () in
  let spec graph =
    Rig.custom ~graph
      ~partitioning:(Chop_dfg.Partition.by_levels graph ~k:2)
      ~package:Chop_tech.Mosis.package_84
      ~clocks:
        (Chop_tech.Clocking.make ~main:300. ~datapath_ratio:1
           ~transfer_ratio:1)
      ~style:(Chop_tech.Style.both Chop_tech.Style.Multi_cycle)
      ~criteria:(Chop_bad.Feasibility.criteria ~perf:60000. ~delay:60000. ())
      ()
  in
  let cache = Pred_cache.create () in
  let config = Explore.Config.make ~cache:(Explore.Config.Custom cache) () in
  Explore.with_engine config (spec graph) @@ fun engine ->
  let _ = Explore.Engine.run engine in
  let per_partition, _ = Explore.Engine.predictions engine in
  List.iter
    (fun (label, preds) ->
      List.iter
        (fun p ->
          Alcotest.(check string) "prediction label" label
            p.Chop_bad.Prediction.partition_label)
        preds)
    per_partition

(* Distinct typed raw keys for the LRU tests: one per chain length (the
   canonical digest separates chains of different lengths). *)
let test_cfg =
  lazy
    (Chop_bad.Predictor.config ~library:Chop_tech.Mosis.experiment_library
       ~clocks:
         (Chop_tech.Clocking.make ~main:300. ~datapath_ratio:1
            ~transfer_ratio:1)
       ~style:(Chop_tech.Style.both Chop_tech.Style.Multi_cycle) ())

let chain_graph ?(name = "chain") n =
  let b = Chop_dfg.Graph.builder ~name () in
  let input = Chop_dfg.Graph.add_node b ~op:Chop_dfg.Op.Input ~width:8 in
  let prev = ref input in
  for _ = 1 to n do
    let s = Chop_dfg.Graph.add_node b ~op:Chop_dfg.Op.Shift ~width:8 in
    Chop_dfg.Graph.add_edge b ~src:!prev ~dst:s;
    prev := s
  done;
  let out = Chop_dfg.Graph.add_node b ~op:Chop_dfg.Op.Output ~width:8 in
  Chop_dfg.Graph.add_edge b ~src:!prev ~dst:out;
  Chop_dfg.Graph.build b

let rkey i =
  Pred_cache.Key.raw ~sub:(chain_graph i) ~cfg:(Lazy.force test_cfg)
    ~model:Chop.Model.Hardware

let test_cache_capacity_evicts_lru () =
  let cache = Pred_cache.create ~capacity:4 () in
  Alcotest.(check (option int)) "capacity recorded" (Some 4)
    (Pred_cache.capacity cache);
  for i = 1 to 10 do
    Pred_cache.add_raw cache (rkey i) []
  done;
  Alcotest.(check int) "bounded after inserts" 4 (Pred_cache.length cache);
  (* the youngest keys survive, the oldest were evicted *)
  Alcotest.(check bool) "newest kept" true
    (Pred_cache.find_raw cache (rkey 10) <> None);
  Alcotest.(check bool) "oldest evicted" true
    (Pred_cache.find_raw cache (rkey 1) = None);
  (* a find refreshes the entry: touch k7, insert, k7 must outlive k8 *)
  ignore (Pred_cache.find_raw cache (rkey 7));
  Pred_cache.add_raw cache (rkey 11) [];
  Alcotest.(check bool) "refreshed entry survives" true
    (Pred_cache.find_raw cache (rkey 7) <> None);
  Alcotest.(check bool) "stale entry evicted" true
    (Pred_cache.find_raw cache (rkey 8) = None);
  (* tightening the bound evicts immediately; lifting it stops evicting *)
  Pred_cache.set_capacity cache (Some 2);
  Alcotest.(check int) "tightened" 2 (Pred_cache.length cache);
  Pred_cache.set_capacity cache None;
  for i = 20 to 30 do
    Pred_cache.add_raw cache (rkey i) []
  done;
  Alcotest.(check int) "unbounded again" 13 (Pred_cache.length cache)

let test_shared_cache_is_bounded () =
  Alcotest.(check (option int)) "shared cache has the default bound"
    (Some Pred_cache.default_shared_capacity)
    (Pred_cache.capacity Pred_cache.shared)

(* regression: a full-layer hit must also refresh the raw entry its key
   extends — before the linked refresh, derived lookups (sensitivity
   sweeps) kept the full entry young while its raw parent aged out *)
let test_cache_full_hit_refreshes_raw_parent () =
  let cache = Pred_cache.create ~capacity:3 () in
  let chip = Chop_tech.Mosis.package_84 in
  let criteria = Chop_bad.Feasibility.criteria ~perf:20000. ~delay:20000. () in
  let r1 = rkey 1 in
  let f1 = Pred_cache.Key.full ~raw:r1 ~chip ~criteria in
  Pred_cache.add_raw cache r1 [];
  Pred_cache.add_full cache f1
    { Pred_cache.raw = []; feasible_count = 0; kept = [] };
  Pred_cache.add_raw cache (rkey 2) [];
  (* touch only the full entry; its raw parent is now the second-youngest
     stamp, the [rkey 2] stranger the oldest *)
  Alcotest.(check bool) "full hit" true
    (Pred_cache.find_full cache f1 <> None);
  Pred_cache.add_raw cache (rkey 3) [];
  Alcotest.(check bool) "stranger evicted" true
    (Pred_cache.find_raw cache (rkey 2) = None);
  Alcotest.(check bool) "raw parent survived" true
    (Pred_cache.find_raw cache r1 <> None)

(* cheap distinct keys for the capacity-boundary sweep: a three-node graph
   whose width is the distinguishing feature *)
let wkey i =
  let b = Chop_dfg.Graph.builder () in
  let inp = Chop_dfg.Graph.add_node b ~op:Chop_dfg.Op.Input ~width:i in
  let s = Chop_dfg.Graph.add_node b ~op:Chop_dfg.Op.Shift ~width:i in
  let out = Chop_dfg.Graph.add_node b ~op:Chop_dfg.Op.Output ~width:i in
  Chop_dfg.Graph.add_edge b ~src:inp ~dst:s;
  Chop_dfg.Graph.add_edge b ~src:s ~dst:out;
  Pred_cache.Key.raw ~sub:(Chop_dfg.Graph.build b) ~cfg:(Lazy.force test_cfg)
    ~model:Chop.Model.Hardware

let test_cache_eviction_at_default_capacity_boundary () =
  let cap = Pred_cache.default_shared_capacity in
  let cache = Pred_cache.create ~capacity:cap () in
  for i = 1 to cap do
    Pred_cache.add_raw cache (wkey i) []
  done;
  Alcotest.(check int) "full to the brim" cap (Pred_cache.length cache);
  Alcotest.(check int) "no eviction at the boundary" 0
    (Pred_cache.counters cache).Pred_cache.evictions;
  Pred_cache.add_raw cache (wkey (cap + 1)) [];
  Alcotest.(check int) "still bounded" cap (Pred_cache.length cache);
  Alcotest.(check int) "one eviction past the boundary" 1
    (Pred_cache.counters cache).Pred_cache.evictions;
  Alcotest.(check bool) "oldest evicted" true
    (Pred_cache.find_raw cache (wkey 1) = None);
  Alcotest.(check bool) "newest kept" true
    (Pred_cache.find_raw cache (wkey (cap + 1)) <> None)

(* the tentpole's end-to-end property: a second session over the same
   structure built in a different construction order is served entirely
   from the first session's cache entries, and every one of those hits is
   classified structural *)
let test_cache_hits_across_constructions () =
  let cache = Explore.Config.Custom (Pred_cache.create ()) in
  let spec_of graph =
    Rig.custom ~graph
      ~partitioning:(Chop_dfg.Partition.by_levels graph ~k:2)
      ~package:Chop_tech.Mosis.package_84
      ~clocks:
        (Chop_tech.Clocking.make ~main:300. ~datapath_ratio:1
           ~transfer_ratio:1)
      ~style:(Chop_tech.Style.both Chop_tech.Style.Multi_cycle)
      ~criteria:(Chop_bad.Feasibility.criteria ~perf:20000. ~delay:20000. ())
      ()
  in
  let g = Chop_dfg.Benchmarks.elliptic_wave_filter () in
  let cold =
    run_with ~cache ~heuristic:Explore.Iterative ~jobs:1 (spec_of g)
  in
  Alcotest.(check int) "cold run misses every partition" 2
    cold.Explore.cache_misses;
  let warm =
    run_with ~cache ~heuristic:Explore.Iterative ~jobs:1
      (spec_of (Chop_dfg.Transform.renumber g))
  in
  Alcotest.(check int) "renumbered spec misses nothing" 0
    warm.Explore.cache_misses;
  Alcotest.(check int) "every partition hits" 2 warm.Explore.cache_hits;
  Alcotest.(check bool) "hits are classified structural" true
    (warm.Explore.metrics.Explore.Metrics.cache_structural_hits >= 2);
  (* and the two runs agree on the outcome *)
  Alcotest.(check string) "same feasible set"
    (Search.to_csv cold.Explore.outcome.Search.feasible)
    (Search.to_csv warm.Explore.outcome.Search.feasible)

(* ------------------------------------------------------------------ *)
(* Config and report plumbing *)

let test_config_validation () =
  match Explore.Config.make ~jobs:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "jobs=0 accepted"

let test_report_timing_fields () =
  let r = run_with ~heuristic:Explore.Iterative ~jobs:2 (ar_spec ()) in
  Alcotest.(check bool) "busy time positive" true
    (r.Explore.bad_busy_seconds > 0.);
  Alcotest.(check bool) "wall time positive" true
    (r.Explore.bad_wall_seconds > 0.);
  Alcotest.(check int) "jobs recorded" 2 r.Explore.jobs

let test_metrics_breakdown () =
  let r = run_with ~heuristic:Explore.Enumeration ~jobs:2 (ar_spec ()) in
  let m = r.Explore.metrics in
  Alcotest.(check bool) "predict wall positive" true
    (m.Explore.Metrics.predict.Explore.Metrics.wall_seconds > 0.);
  Alcotest.(check bool) "predict busy positive" true
    (m.Explore.Metrics.predict.Explore.Metrics.busy_seconds > 0.);
  Alcotest.(check bool) "search wall positive" true
    (m.Explore.Metrics.search.Explore.Metrics.wall_seconds > 0.);
  Alcotest.(check bool) "merge wall non-negative" true
    (m.Explore.Metrics.merge_wall_seconds >= 0.);
  Alcotest.(check bool) "per-worker busy recorded" true
    (Array.length m.Explore.Metrics.worker_busy_seconds >= 1);
  Alcotest.(check bool) "chunks handed out" true
    (m.Explore.Metrics.chunk_count >= 1);
  Alcotest.(check int) "cache counters mirrored" r.Explore.cache_misses
    m.Explore.Metrics.cache_misses;
  Alcotest.(check bool) "summary renders" true
    (String.length (Explore.Metrics.summary m) > 0)

let test_metrics_iterative_sequential () =
  (* the iterative scan is sequential: its busy time is its wall time *)
  let r = run_with ~heuristic:Explore.Iterative ~jobs:1 (ar_spec ()) in
  let s = r.Explore.metrics.Explore.Metrics.search in
  Alcotest.(check (float 1e-9)) "iterative busy = wall"
    s.Explore.Metrics.wall_seconds s.Explore.Metrics.busy_seconds

let test_metrics_cache_evictions () =
  (* a one-entry cache cannot hold both layers of even one partition, so
     the run must record evictions; an unbounded cache must record none *)
  let tight = Pred_cache.create ~capacity:1 () in
  let r =
    run_with ~cache:(Explore.Config.Custom tight)
      ~heuristic:Explore.Iterative ~jobs:1 (ar_spec ())
  in
  Alcotest.(check bool) "evictions recorded" true
    (r.Explore.metrics.Explore.Metrics.cache_evictions > 0);
  let roomy = Pred_cache.create () in
  let r2 =
    run_with ~cache:(Explore.Config.Custom roomy)
      ~heuristic:Explore.Iterative ~jobs:1 (ar_spec ())
  in
  Alcotest.(check int) "no evictions when unbounded" 0
    r2.Explore.metrics.Explore.Metrics.cache_evictions;
  Alcotest.(check int) "counters agree" (Pred_cache.counters tight).evictions
    r.Explore.metrics.Explore.Metrics.cache_evictions

let test_run_interruptible_cancels () =
  let spec = ar_spec () in
  Explore.with_engine Explore.Config.default spec @@ fun engine ->
  Alcotest.check_raises "immediate interrupt" Explore.Cancelled (fun () ->
      ignore (Explore.Engine.run_interruptible ~interrupt:(fun () -> true)
                engine));
  (* a cancelled engine is not poisoned: the next run completes *)
  let r = Explore.Engine.run engine in
  Alcotest.(check bool) "engine survives cancellation" true
    (r.Explore.outcome.Search.stats.Search.implementation_trials > 0);
  (* and a never-firing interrupt changes nothing *)
  let r2 =
    Explore.Engine.run_interruptible ~interrupt:(fun () -> false) engine
  in
  Alcotest.(check string) "uninterrupted run matches"
    (Search.to_csv r.Explore.outcome.Search.feasible)
    (Search.to_csv r2.Explore.outcome.Search.feasible)

let test_engine_predictions_match_legacy () =
  let spec = ar_spec () in
  Explore.with_engine Explore.Config.default spec @@ fun engine ->
  let per_new, stats_new = Explore.Engine.predictions engine in
  let per_old, stats_old =
    (* an uncached parallel engine must agree with the default one *)
    Explore.with_engine
      (Explore.Config.make ~jobs:4 ~cache:Explore.Config.Off ())
      spec Explore.Engine.predictions
  in
  Alcotest.(check (list string)) "labels"
    (List.map fst per_old) (List.map fst per_new);
  List.iter2
    (fun (_, old_preds) (_, new_preds) ->
      Alcotest.(check int) "prediction count" (List.length old_preds)
        (List.length new_preds))
    per_old per_new;
  List.iter2
    (fun (a : Explore.bad_stats) (b : Explore.bad_stats) ->
      Alcotest.(check int) "total" a.Explore.total_predictions
        b.Explore.total_predictions;
      Alcotest.(check int) "kept" a.Explore.kept b.Explore.kept)
    stats_old stats_new

(* ------------------------------------------------------------------ *)
(* Session forks and speculative evaluation *)

let feasible_csv (r : Explore.report) =
  Search.to_csv r.Explore.outcome.Search.feasible

(* one legal single-op move on the spec's seed partitioning *)
let legal_move spec =
  let pg = spec.Spec.partitioning in
  let labels =
    List.map (fun (p : Chop_dfg.Partition.t) -> p.Chop_dfg.Partition.label)
      pg.Chop_dfg.Partition.parts
  in
  List.concat_map
    (fun (p : Chop_dfg.Partition.t) ->
      List.map
        (fun m -> (m, p.Chop_dfg.Partition.label))
        p.Chop_dfg.Partition.members)
    pg.Chop_dfg.Partition.parts
  |> List.find_map (fun (op, cur) ->
         List.find_map
           (fun l ->
             if String.equal l cur then None
             else
               match Chop_dfg.Partition.move_op pg ~op ~to_:l with
               | Ok _ -> Some (op, l)
               | Error _ -> None)
           labels)
  |> Option.get

let test_fork_isolates_parent () =
  let spec = ar_spec () in
  let cache = Pred_cache.create () in
  let config = Explore.Config.make ~cache:(Explore.Config.Custom cache) () in
  Explore.with_session config spec @@ fun s ->
  ignore (Explore.Session.run s);
  let rev = Explore.Session.revision s in
  let op, to_ = legal_move spec in
  let fork = Explore.Session.fork s in
  (match Explore.Session.edit fork [ Spec.Move_op { op; to_partition = to_ } ]
   with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "fork edit rejected");
  let fr = Explore.Session.run fork in
  (* the fork moved on; the parent saw none of it *)
  Alcotest.(check int) "parent revision unchanged" rev
    (Explore.Session.revision s);
  Alcotest.(check (list string)) "parent dirty set clean" []
    (Explore.Session.pending_dirty s);
  Alcotest.(check string) "parent still owns the op"
    (Chop_dfg.Partition.part_of spec.Spec.partitioning op)
      .Chop_dfg.Partition.label
    (Chop_dfg.Partition.part_of
       (Explore.Session.spec s).Spec.partitioning op)
      .Chop_dfg.Partition.label;
  (* committing the same edit on the parent re-serves the fork's
     predictions: no new cache misses *)
  (match Explore.Session.edit s [ Spec.Move_op { op; to_partition = to_ } ]
   with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "parent edit rejected");
  let m0 = (Pred_cache.counters cache).misses in
  let r = Explore.Session.run s in
  Alcotest.(check int) "commit run is all cache hits" m0
    (Pred_cache.counters cache).misses;
  Alcotest.(check string) "fork and commit agree" (feasible_csv fr)
    (feasible_csv r)

let test_speculate_exception_drains () =
  let spec = ar_spec () in
  let pool = Chop_util.Pool.create ~oversubscribe:true ~jobs:4 () in
  Fun.protect ~finally:(fun () -> Chop_util.Pool.shutdown pool) @@ fun () ->
  Explore.with_session ~pool Explore.Config.default spec @@ fun s ->
  let baseline = feasible_csv (Explore.Session.run s) in
  let rev = Explore.Session.revision s in
  (match
     Explore.Session.speculate s
       [|
         (fun f -> feasible_csv (Explore.Session.run f));
         (fun _ -> failwith "boom");
         (fun f -> feasible_csv (Explore.Session.run f));
       |]
   with
  | _ -> Alcotest.fail "exception swallowed"
  | exception Failure m -> Alcotest.(check string) "first error" "boom" m);
  (* the session was never touched and neither it nor the pool is
     poisoned: both serve the next batch *)
  Alcotest.(check int) "revision unchanged" rev (Explore.Session.revision s);
  let results, _ =
    Explore.Session.speculate s
      [| (fun f -> feasible_csv (Explore.Session.run f)) |]
  in
  Alcotest.(check string) "pool reusable, fork agrees" baseline results.(0);
  Alcotest.(check string) "session run unchanged" baseline
    (feasible_csv (Explore.Session.run s))

(* Parallel speculative predictions over one shared cache: the global
   counters are mutex-protected and the per-run counts are collected
   locally by each run, so the deltas must sum exactly — no lost updates
   under concurrent writers. *)
let test_pred_cache_concurrent_counters () =
  let cache = Pred_cache.create () in
  let config = Explore.Config.make ~cache:(Explore.Config.Custom cache) () in
  let pool = Chop_util.Pool.create ~oversubscribe:true ~jobs:4 () in
  Fun.protect ~finally:(fun () -> Chop_util.Pool.shutdown pool) @@ fun () ->
  Explore.with_session ~pool config (ar_spec ()) @@ fun s ->
  ignore (Explore.Session.run s);
  let c0 = Pred_cache.counters cache in
  let n = 16 in
  let results, _ =
    Explore.Session.speculate s
      (Array.init n (fun _ f ->
           let r = Explore.Session.run f in
           (r.Explore.cache_hits, r.Explore.cache_misses)))
  in
  let c1 = Pred_cache.counters cache in
  let sum_hits = Array.fold_left (fun a (h, _) -> a + h) 0 results in
  let sum_misses = Array.fold_left (fun a (_, m) -> a + m) 0 results in
  Alcotest.(check bool) "every run was served" true (sum_hits > 0);
  Alcotest.(check int) "warm runs miss nothing" 0 sum_misses;
  Alcotest.(check int) "hit counter sums exactly" sum_hits (c1.hits - c0.hits);
  Alcotest.(check int) "miss counter sums exactly" 0 (c1.misses - c0.misses)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "chop_engine"
    [
      ( "determinism",
        [
          tc "ar enumeration" `Quick
            (check_determinism ~heuristic:Explore.Enumeration ~keep_all:false
               ar_spec);
          tc "ar branch-bound keep-all" `Quick
            (check_determinism ~heuristic:Explore.Branch_bound ~keep_all:true
               ar_spec);
          tc "ewf enumeration keep-all" `Quick
            (check_determinism ~heuristic:Explore.Enumeration ~keep_all:true
               ewf_spec);
          tc "ewf branch-bound" `Quick
            (check_determinism ~heuristic:Explore.Branch_bound ~keep_all:false
               ewf_spec);
          tc "ar matches legacy API" `Quick
            (check_matches_legacy ~heuristic:Explore.Enumeration ar_spec);
          tc "ewf matches legacy API" `Quick
            (check_matches_legacy ~heuristic:Explore.Branch_bound ewf_spec);
          tc "feasible trials hand-counted (jobs 1)" `Quick
            (check_feasible_trials_hand_count ~jobs:1);
          tc "feasible trials hand-counted (jobs 4)" `Quick
            (check_feasible_trials_hand_count ~jobs:4);
        ] );
      ( "lifecycle",
        [
          tc "close is idempotent" `Quick test_close_idempotent;
          tc "run after close raises" `Quick test_run_after_close_raises;
          tc "with_engine closes on raise" `Quick
            test_with_engine_closes_on_raise;
          tc "engine reusable across runs" `Quick test_engine_reuse_after_runs;
        ] );
      ( "cache",
        [
          tc "second run hits 100%" `Quick test_cache_second_run_hits;
          tc "cached equals uncached" `Quick test_cache_matches_uncached;
          tc "raw layer survives criteria change" `Quick
            test_cache_raw_layer_survives_criteria_change;
          tc "relabels shared predictions" `Quick
            test_cache_relabels_predictions;
          tc "capacity evicts LRU" `Quick test_cache_capacity_evicts_lru;
          tc "shared cache is bounded" `Quick test_shared_cache_is_bounded;
          tc "full hit refreshes raw parent" `Quick
            test_cache_full_hit_refreshes_raw_parent;
          tc "eviction at default capacity boundary" `Quick
            test_cache_eviction_at_default_capacity_boundary;
          tc "hits across constructions" `Quick
            test_cache_hits_across_constructions;
        ] );
      ( "config",
        [
          tc "validation" `Quick test_config_validation;
          tc "report timing fields" `Quick test_report_timing_fields;
          tc "metrics breakdown" `Quick test_metrics_breakdown;
          tc "iterative search is sequential" `Quick
            test_metrics_iterative_sequential;
          tc "cache evictions metric" `Quick test_metrics_cache_evictions;
          tc "run_interruptible cancels" `Quick test_run_interruptible_cancels;
          tc "predictions match legacy" `Quick
            test_engine_predictions_match_legacy;
        ] );
      ( "speculation",
        [
          tc "fork isolates the parent" `Quick test_fork_isolates_parent;
          tc "speculate exception drains clean" `Quick
            test_speculate_exception_drains;
          tc "shared-cache counters sum exactly" `Quick
            test_pred_cache_concurrent_counters;
        ] );
    ]
