(* Tests for the exploration engine: Config/Engine API, parallel
   determinism (jobs=1 vs jobs=4 must produce identical outcomes) and the
   memoized prediction cache. *)

open Chop

(* The paper's experiment-1 AR lattice filter, two partitions. *)
let ar_spec () = Rig.experiment1 ~partitions:2 ()

(* The elliptic wave filter under experiment-2-style conditions (the
   bench's secondary workload), two partitions. *)
let ewf_spec () =
  let graph = Chop_dfg.Benchmarks.elliptic_wave_filter () in
  Rig.custom ~graph
    ~partitioning:(Chop_dfg.Partition.by_levels graph ~k:2)
    ~package:Chop_tech.Mosis.package_84
    ~clocks:
      (Chop_tech.Clocking.make ~main:300. ~datapath_ratio:1 ~transfer_ratio:1)
    ~style:(Chop_tech.Style.both Chop_tech.Style.Multi_cycle)
    ~criteria:(Chop_bad.Feasibility.criteria ~perf:20000. ~delay:20000. ())
    ()

let run_with ?(cache = Explore.Config.Off) ?(keep_all = false) ~heuristic
    ~jobs spec =
  Explore.Engine.run
    (Explore.Engine.create
       (Explore.Config.make ~heuristic ~keep_all ~jobs ~cache ())
       spec)

(* ------------------------------------------------------------------ *)
(* Determinism: any jobs value must yield the identical outcome *)

let check_determinism ~heuristic ~keep_all spec_of () =
  let r1 = run_with ~heuristic ~keep_all ~jobs:1 (spec_of ()) in
  let r4 = run_with ~heuristic ~keep_all ~jobs:4 (spec_of ()) in
  Alcotest.(check string) "feasible csv"
    (Search.to_csv r1.Explore.outcome.Search.feasible)
    (Search.to_csv r4.Explore.outcome.Search.feasible);
  Alcotest.(check string) "explored csv"
    (Search.to_csv r1.Explore.outcome.Search.explored)
    (Search.to_csv r4.Explore.outcome.Search.explored);
  let s1 = r1.Explore.outcome.Search.stats
  and s4 = r4.Explore.outcome.Search.stats in
  Alcotest.(check int) "trials" s1.Search.implementation_trials
    s4.Search.implementation_trials;
  Alcotest.(check int) "integrations" s1.Search.integrations
    s4.Search.integrations;
  Alcotest.(check int) "feasible trials" s1.Search.feasible_trials
    s4.Search.feasible_trials;
  Alcotest.(check int) "jobs recorded" 4 r4.Explore.jobs

(* jobs must also not disturb the legacy sequential results *)
let check_matches_legacy ~heuristic spec_of () =
  let legacy = Explore.run heuristic (spec_of ()) in
  let engine = run_with ~heuristic ~jobs:4 (spec_of ()) in
  Alcotest.(check string) "feasible csv"
    (Search.to_csv legacy.Explore.outcome.Search.feasible)
    (Search.to_csv engine.Explore.outcome.Search.feasible)

(* ------------------------------------------------------------------ *)
(* Prediction cache *)

let test_cache_second_run_hits () =
  let spec = ar_spec () in
  let cache = Pred_cache.create () in
  let config = Explore.Config.make ~cache:(Explore.Config.Custom cache) () in
  let engine = Explore.Engine.create config spec in
  let r1 = Explore.Engine.run engine in
  Alcotest.(check int) "first run misses every partition" 2
    r1.Explore.cache_misses;
  Alcotest.(check int) "first run has no hits" 0 r1.Explore.cache_hits;
  let r2 = Explore.Engine.run engine in
  Alcotest.(check int) "second run hits every partition" 2
    r2.Explore.cache_hits;
  Alcotest.(check int) "second run misses nothing" 0 r2.Explore.cache_misses;
  Alcotest.(check string) "cached outcome identical"
    (Search.to_csv r1.Explore.outcome.Search.feasible)
    (Search.to_csv r2.Explore.outcome.Search.feasible)

let test_cache_matches_uncached () =
  let spec = ewf_spec () in
  let heuristic = Explore.Enumeration in
  let cached =
    run_with ~cache:(Explore.Config.Custom (Pred_cache.create ())) ~heuristic
      ~jobs:1 spec
  in
  let uncached = run_with ~heuristic ~jobs:1 spec in
  Alcotest.(check string) "same feasible front"
    (Search.to_csv uncached.Explore.outcome.Search.feasible)
    (Search.to_csv cached.Explore.outcome.Search.feasible);
  Alcotest.(check int) "uncached engine counts misses" 2
    uncached.Explore.cache_misses;
  Alcotest.(check int) "uncached engine never hits" 0 uncached.Explore.cache_hits

let test_cache_raw_layer_survives_criteria_change () =
  (* moving a feasibility constraint must reuse the raw BAD enumeration:
     the full-entry key changes but the raw layer still hits *)
  let spec = ar_spec () in
  let cache = Pred_cache.create () in
  let config = Explore.Config.make ~cache:(Explore.Config.Custom cache) () in
  let r1 = Explore.Engine.run (Explore.Engine.create config spec) in
  Alcotest.(check int) "cold run misses" 2 r1.Explore.cache_misses;
  let relaxed =
    Advisor.set_constraints spec
      ~criteria:(Chop_bad.Feasibility.criteria ~perf:60000. ~delay:60000. ())
  in
  let r2 = Explore.Engine.run (Explore.Engine.create config relaxed) in
  Alcotest.(check int) "constraint change still hits raw layer" 2
    r2.Explore.cache_hits;
  Alcotest.(check int) "no re-prediction" 0 r2.Explore.cache_misses

let test_cache_relabels_predictions () =
  (* two structurally identical partitions on identical chips share cache
     entries, but each must see its own label on the predictions *)
  let graph = Chop_dfg.Benchmarks.fir_filter ~taps:8 () in
  let spec graph =
    Rig.custom ~graph
      ~partitioning:(Chop_dfg.Partition.by_levels graph ~k:2)
      ~package:Chop_tech.Mosis.package_84
      ~clocks:
        (Chop_tech.Clocking.make ~main:300. ~datapath_ratio:1
           ~transfer_ratio:1)
      ~style:(Chop_tech.Style.both Chop_tech.Style.Multi_cycle)
      ~criteria:(Chop_bad.Feasibility.criteria ~perf:60000. ~delay:60000. ())
      ()
  in
  let cache = Pred_cache.create () in
  let config = Explore.Config.make ~cache:(Explore.Config.Custom cache) () in
  let engine = Explore.Engine.create config (spec graph) in
  let _ = Explore.Engine.run engine in
  let per_partition, _ = Explore.Engine.predictions engine in
  List.iter
    (fun (label, preds) ->
      List.iter
        (fun p ->
          Alcotest.(check string) "prediction label" label
            p.Chop_bad.Prediction.partition_label)
        preds)
    per_partition

(* ------------------------------------------------------------------ *)
(* Config and report plumbing *)

let test_config_validation () =
  match Explore.Config.make ~jobs:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "jobs=0 accepted"

let test_report_timing_fields () =
  let r = run_with ~heuristic:Explore.Iterative ~jobs:2 (ar_spec ()) in
  Alcotest.(check bool) "busy time positive" true (r.Explore.bad_cpu_seconds > 0.);
  Alcotest.(check bool) "wall time positive" true
    (r.Explore.bad_wall_seconds > 0.);
  Alcotest.(check int) "jobs recorded" 2 r.Explore.jobs

let test_engine_predictions_match_legacy () =
  let spec = ar_spec () in
  let engine = Explore.Engine.create Explore.Config.default spec in
  let per_new, stats_new = Explore.Engine.predictions engine in
  let per_old, stats_old = Explore.predictions spec in
  Alcotest.(check (list string)) "labels"
    (List.map fst per_old) (List.map fst per_new);
  List.iter2
    (fun (_, old_preds) (_, new_preds) ->
      Alcotest.(check int) "prediction count" (List.length old_preds)
        (List.length new_preds))
    per_old per_new;
  List.iter2
    (fun (a : Explore.bad_stats) (b : Explore.bad_stats) ->
      Alcotest.(check int) "total" a.Explore.total_predictions
        b.Explore.total_predictions;
      Alcotest.(check int) "kept" a.Explore.kept b.Explore.kept)
    stats_old stats_new

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "chop_engine"
    [
      ( "determinism",
        [
          tc "ar enumeration" `Quick
            (check_determinism ~heuristic:Explore.Enumeration ~keep_all:false
               ar_spec);
          tc "ar branch-bound keep-all" `Quick
            (check_determinism ~heuristic:Explore.Branch_bound ~keep_all:true
               ar_spec);
          tc "ewf enumeration keep-all" `Quick
            (check_determinism ~heuristic:Explore.Enumeration ~keep_all:true
               ewf_spec);
          tc "ewf branch-bound" `Quick
            (check_determinism ~heuristic:Explore.Branch_bound ~keep_all:false
               ewf_spec);
          tc "ar matches legacy API" `Quick
            (check_matches_legacy ~heuristic:Explore.Enumeration ar_spec);
          tc "ewf matches legacy API" `Quick
            (check_matches_legacy ~heuristic:Explore.Branch_bound ewf_spec);
        ] );
      ( "cache",
        [
          tc "second run hits 100%" `Quick test_cache_second_run_hits;
          tc "cached equals uncached" `Quick test_cache_matches_uncached;
          tc "raw layer survives criteria change" `Quick
            test_cache_raw_layer_survives_criteria_change;
          tc "relabels shared predictions" `Quick
            test_cache_relabels_predictions;
        ] );
      ( "config",
        [
          tc "validation" `Quick test_config_validation;
          tc "report timing fields" `Quick test_report_timing_fields;
          tc "predictions match legacy" `Quick
            test_engine_predictions_match_legacy;
        ] );
    ]
