(* Tests for chop_dfg: operations, graph construction/validation, analyses,
   transformations, benchmark graphs and partitions. *)

open Chop_dfg

(* small helper: a diamond graph  in -> a;  a -> m1, m2;  m1,m2 -> s; s -> out *)
let diamond () =
  let b = Graph.builder ~name:"diamond" () in
  let i = Graph.add_node b ~name:"i" ~op:Op.Input ~width:16 in
  let c = Graph.add_node b ~name:"c" ~op:Op.Const ~width:16 in
  let m1 = Graph.add_node b ~name:"m1" ~op:Op.Mult ~width:16 in
  let m2 = Graph.add_node b ~name:"m2" ~op:Op.Mult ~width:16 in
  let s = Graph.add_node b ~name:"s" ~op:Op.Add ~width:16 in
  let o = Graph.add_node b ~name:"o" ~op:Op.Output ~width:16 in
  Graph.add_edge b ~src:i ~dst:m1;
  Graph.add_edge b ~src:c ~dst:m1;
  Graph.add_edge b ~src:i ~dst:m2;
  Graph.add_edge b ~src:c ~dst:m2;
  Graph.add_edge b ~src:m1 ~dst:s;
  Graph.add_edge b ~src:m2 ~dst:s;
  Graph.add_edge b ~src:s ~dst:o;
  (Graph.build b, i, m1, m2, s)

(* ------------------------------------------------------------------ *)
(* Op *)

let test_op_arity () =
  Alcotest.(check (pair int int)) "input" (0, 0) (Op.arity Op.Input);
  Alcotest.(check (pair int int)) "add" (2, 2) (Op.arity Op.Add);
  Alcotest.(check (pair int int)) "select" (3, 3) (Op.arity Op.Select);
  Alcotest.(check (pair int int)) "mem read" (0, 1) (Op.arity (Op.Mem_read "m"))

let test_op_classes () =
  Alcotest.(check string) "add class" "add" (Op.functional_class Op.Add);
  Alcotest.(check string) "sub shares add" "add" (Op.functional_class Op.Sub);
  Alcotest.(check string) "compare shares add" "add" (Op.functional_class Op.Compare);
  Alcotest.(check string) "mult" "mult" (Op.functional_class Op.Mult);
  Alcotest.(check string) "memport per block" "memport:m"
    (Op.functional_class (Op.Mem_write "m"))

let test_op_class_rejects_boundary () =
  Alcotest.check_raises "input"
    (Invalid_argument "Op.functional_class: Input is not computational")
    (fun () -> ignore (Op.functional_class Op.Input))

let test_op_memory () =
  Alcotest.(check bool) "read is memory" true (Op.is_memory (Op.Mem_read "a"));
  Alcotest.(check bool) "add is not" false (Op.is_memory Op.Add);
  Alcotest.(check (option string)) "block" (Some "a") (Op.memory_block (Op.Mem_read "a"));
  Alcotest.(check (option string)) "no block" None (Op.memory_block Op.Add)

let test_op_computational () =
  Alcotest.(check bool) "const" false (Op.is_computational Op.Const);
  Alcotest.(check bool) "select" true (Op.is_computational Op.Select)

(* ------------------------------------------------------------------ *)
(* Graph *)

let test_graph_build_diamond () =
  let g, _, _, _, _ = diamond () in
  Alcotest.(check int) "size" 6 (Graph.size g);
  Alcotest.(check int) "ops" 3 (Graph.op_count g);
  Alcotest.(check (list (pair string int))) "profile"
    [ ("add", 1); ("mult", 2) ] (Graph.op_profile g)

let test_graph_rejects_cycle () =
  let b = Graph.builder () in
  let a1 = Graph.add_node b ~op:Op.Add ~width:8 in
  let a2 = Graph.add_node b ~op:Op.Add ~width:8 in
  Graph.add_edge b ~src:a1 ~dst:a2;
  Graph.add_edge b ~src:a2 ~dst:a1;
  Graph.add_edge b ~src:a1 ~dst:a2;
  Graph.add_edge b ~src:a2 ~dst:a1;
  (match Graph.build b with
  | exception Graph.Invalid_graph _ -> ()
  | _ -> Alcotest.fail "cycle accepted")

let test_graph_rejects_bad_arity () =
  let b = Graph.builder () in
  let i = Graph.add_node b ~op:Op.Input ~width:8 in
  let a = Graph.add_node b ~op:Op.Add ~width:8 in
  Graph.add_edge b ~src:i ~dst:a;
  (* Add needs exactly 2 inputs; give it 1 *)
  (match Graph.build b with
  | exception Graph.Invalid_graph _ -> ()
  | _ -> Alcotest.fail "bad arity accepted")

let test_graph_rejects_input_with_preds () =
  let b = Graph.builder () in
  let i1 = Graph.add_node b ~op:Op.Input ~width:8 in
  let i2 = Graph.add_node b ~op:Op.Input ~width:8 in
  Graph.add_edge b ~src:i1 ~dst:i2;
  (match Graph.build b with
  | exception Graph.Invalid_graph _ -> ()
  | _ -> Alcotest.fail "input with predecessor accepted")

let test_graph_rejects_bad_width () =
  let b = Graph.builder () in
  Alcotest.check_raises "width"
    (Invalid_argument "Graph.add_node: width must be positive") (fun () ->
      ignore (Graph.add_node b ~op:Op.Input ~width:0))

let test_graph_rejects_unknown_edge () =
  let b = Graph.builder () in
  let i = Graph.add_node b ~op:Op.Input ~width:8 in
  Alcotest.check_raises "edge" (Invalid_argument "Graph.add_edge: unknown node")
    (fun () -> Graph.add_edge b ~src:i ~dst:99)

let test_graph_duplicate_edges_allowed () =
  (* squaring: both operands of a mult come from the same value *)
  let b = Graph.builder () in
  let i = Graph.add_node b ~op:Op.Input ~width:8 in
  let m = Graph.add_node b ~op:Op.Mult ~width:8 in
  Graph.add_edge b ~src:i ~dst:m;
  Graph.add_edge b ~src:i ~dst:m;
  let g = Graph.build b in
  Alcotest.(check int) "two preds" 2 (List.length (Graph.preds g m))

let test_graph_succs_preds () =
  let g, i, m1, m2, s = diamond () in
  Alcotest.(check (list int)) "i succs" [ m1; m2 ] (List.sort Int.compare (Graph.succs g i));
  Alcotest.(check (list int)) "s preds" [ m1; m2 ] (List.sort Int.compare (Graph.preds g s))

let test_graph_io_bits () =
  let g, _, _, _, _ = diamond () in
  Alcotest.(check int) "in" 16 (Graph.total_input_bits g);
  Alcotest.(check int) "out" 16 (Graph.total_output_bits g)

let test_graph_node_lookup () =
  let g, i, _, _, _ = diamond () in
  Alcotest.(check string) "name" "i" (Graph.node g i).Graph.name;
  Alcotest.(check bool) "mem" true (Graph.mem g i);
  Alcotest.(check bool) "not mem" false (Graph.mem g 999);
  Alcotest.check_raises "missing" Not_found (fun () -> ignore (Graph.node g 999))

let test_graph_memory_blocks () =
  let g = Benchmarks.memory_pipeline ~blocks:("A", "B") () in
  Alcotest.(check (list string)) "blocks" [ "A"; "B" ] (Graph.memory_blocks g)

let test_induced_basic () =
  let g, _, m1, m2, s = diamond () in
  let sub, in_map, out_map = Graph.induced g ~name:"half" [ m1; m2 ] in
  (* inputs: i becomes one Input; c is cloned as Const; outputs: m1, m2 *)
  Alcotest.(check int) "ops" 2 (Graph.op_count sub);
  Alcotest.(check int) "one external input" 1 (List.length (Graph.inputs sub));
  Alcotest.(check int) "two outputs" 2 (List.length (Graph.outputs sub));
  Alcotest.(check int) "in_map has i and c" 2 (List.length in_map);
  Alcotest.(check int) "out_map" 2 (List.length out_map);
  ignore s

let test_induced_const_cloned () =
  let g, _, m1, _, _ = diamond () in
  let sub, _, _ = Graph.induced g ~name:"one" [ m1 ] in
  let consts =
    List.filter (fun n -> n.Graph.op = Op.Const) (Graph.nodes sub)
  in
  Alcotest.(check int) "const cloned locally" 1 (List.length consts)

let test_induced_rejects_boundary () =
  let g, i, _, _, _ = diamond () in
  Alcotest.check_raises "boundary"
    (Invalid_argument "Graph.induced: boundary nodes cannot be selected")
    (fun () -> ignore (Graph.induced g ~name:"bad" [ i ]))

let test_induced_whole_has_no_cut () =
  let g, _, m1, m2, s = diamond () in
  let sub, _, _ = Graph.induced g ~name:"all" [ m1; m2; s ] in
  Alcotest.(check int) "ops preserved" 3 (Graph.op_count sub);
  (* s drives the original output: the value must escape *)
  Alcotest.(check int) "one output" 1 (List.length (Graph.outputs sub))

(* ------------------------------------------------------------------ *)
(* Analysis *)

let test_asap_diamond () =
  let g, i, m1, _, s = diamond () in
  let asap = Analysis.asap g in
  Alcotest.(check int) "input at 0" 0 (List.assoc i asap);
  Alcotest.(check int) "m1 at 0" 0 (List.assoc m1 asap);
  Alcotest.(check int) "s after muls" 1 (List.assoc s asap)

let test_critical_path_unit () =
  let g, _, _, _, _ = diamond () in
  Alcotest.(check int) "cp" 2 (Analysis.critical_path g)

let test_critical_path_weighted () =
  let g, _, _, _, _ = diamond () in
  let latency n = if n.Graph.op = Op.Mult then 3 else 1 in
  Alcotest.(check int) "weighted" 4 (Analysis.critical_path ~latency g)

let test_alap_slack () =
  let g, _, m1, _, s = diamond () in
  let alap = Analysis.alap ~length:2 g in
  Alcotest.(check int) "s latest" 1 (List.assoc s alap);
  Alcotest.(check int) "m1 latest" 0 (List.assoc m1 alap);
  let slack = Analysis.slack g in
  Alcotest.(check bool) "no slack on critical diamond" true
    (List.for_all (fun (_, sl) -> sl = 0) slack)

let test_alap_too_short () =
  let g, _, _, _, _ = diamond () in
  match Analysis.alap ~length:1 g with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "short alap accepted"

let test_alap_longer_horizon () =
  let g, _, m1, _, _ = diamond () in
  let alap = Analysis.alap ~length:10 g in
  Alcotest.(check int) "m1 pushed late" 8 (List.assoc m1 alap)

let test_critical_path_ns () =
  let g, _, _, _, _ = diamond () in
  let delay n = if n.Graph.op = Op.Mult then 100. else 10. in
  Alcotest.(check (float 1e-9)) "ns path" 110. (Analysis.critical_path_ns ~delay g)

let test_levels () =
  let g, _, _, _, _ = diamond () in
  let levels = Analysis.levels g in
  Alcotest.(check int) "two levels" 2 (List.length levels);
  Alcotest.(check int) "first level has both muls" 2 (List.length (List.nth levels 0))

let test_max_width_profile () =
  let g, _, _, _, _ = diamond () in
  Alcotest.(check (list (pair string int))) "profile"
    [ ("add", 1); ("mult", 2) ]
    (Analysis.max_width_profile g)

let test_reachable () =
  let g, i, _, _, s = diamond () in
  let r = Analysis.reachable g ~from:[ s ] in
  Alcotest.(check bool) "s reaches output only" true (List.length r = 2);
  let r2 = Analysis.reachable g ~from:[ i ] in
  Alcotest.(check bool) "input reaches most" true (List.length r2 >= 5)

(* ------------------------------------------------------------------ *)
(* Transform *)

let accumulator_body () =
  (* acc_in + x -> acc_out, with y = acc_out observable *)
  let b = Graph.builder ~name:"acc" () in
  let acc_in = Graph.add_node b ~name:"acc_in" ~op:Op.Input ~width:8 in
  let x = Graph.add_node b ~name:"x" ~op:Op.Input ~width:8 in
  let sum = Graph.add_node b ~name:"sum" ~op:Op.Add ~width:8 in
  let acc_out = Graph.add_node b ~name:"acc_out" ~op:Op.Output ~width:8 in
  Graph.add_edge b ~src:acc_in ~dst:sum;
  Graph.add_edge b ~src:x ~dst:sum;
  Graph.add_edge b ~src:sum ~dst:acc_out;
  Graph.build b

let test_unroll_counts () =
  let body = accumulator_body () in
  let loop =
    { Transform.body; trip_count = 4; carried = [ ("acc_out", "acc_in") ] }
  in
  let g = Transform.unroll loop in
  Alcotest.(check int) "4 adds" 4 (Graph.op_count g);
  (* inputs: initial acc + 4 stream xs *)
  Alcotest.(check int) "5 inputs" 5 (List.length (Graph.inputs g));
  Alcotest.(check int) "1 output" 1 (List.length (Graph.outputs g));
  Alcotest.(check int) "chained depth" 4 (Analysis.critical_path g)

let test_unroll_once_is_body () =
  let body = accumulator_body () in
  let loop =
    { Transform.body; trip_count = 1; carried = [ ("acc_out", "acc_in") ] }
  in
  let g = Transform.unroll loop in
  Alcotest.(check int) "same ops" (Graph.op_count body) (Graph.op_count g);
  Alcotest.(check int) "same size" (Graph.size body) (Graph.size g)

let test_unroll_validates () =
  let body = accumulator_body () in
  (match
     Transform.unroll { Transform.body; trip_count = 0; carried = [] }
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "trip_count 0 accepted");
  match
    Transform.unroll
      { Transform.body; trip_count = 2; carried = [ ("nope", "acc_in") ] }
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad carried name accepted"

let test_unroll_acyclic_quotient () =
  let body = accumulator_body () in
  let g =
    Transform.unroll
      { Transform.body; trip_count = 8; carried = [ ("acc_out", "acc_in") ] }
  in
  (* building succeeded, so the graph is acyclic; depth must equal trip count *)
  Alcotest.(check int) "depth" 8 (Analysis.critical_path g)

let test_cse_merges_duplicates () =
  (* the diamond's two multiplications compute the same product *)
  let g, _, _, _, _ = diamond () in
  let g' = Transform.common_subexpression_elimination g in
  Alcotest.(check int) "mult deduplicated" 2 (Graph.op_count g');
  Alcotest.(check bool) "behaviour preserved" true (Eval.equivalent g g')

let test_cse_respects_order () =
  (* a - b and b - a must not merge *)
  let b = Graph.builder () in
  let x = Graph.add_node b ~name:"x" ~op:Op.Input ~width:8 in
  let y = Graph.add_node b ~name:"y" ~op:Op.Input ~width:8 in
  let s1 = Graph.add_node b ~name:"s1" ~op:Op.Sub ~width:8 in
  Graph.add_edge b ~src:x ~dst:s1;
  Graph.add_edge b ~src:y ~dst:s1;
  let s2 = Graph.add_node b ~name:"s2" ~op:Op.Sub ~width:8 in
  Graph.add_edge b ~src:y ~dst:s2;
  Graph.add_edge b ~src:x ~dst:s2;
  let o1 = Graph.add_node b ~name:"o1" ~op:Op.Output ~width:8 in
  let o2 = Graph.add_node b ~name:"o2" ~op:Op.Output ~width:8 in
  Graph.add_edge b ~src:s1 ~dst:o1;
  Graph.add_edge b ~src:s2 ~dst:o2;
  let g = Graph.build b in
  let g' = Transform.common_subexpression_elimination g in
  Alcotest.(check int) "both subtractions kept" 2 (Graph.op_count g');
  Alcotest.(check bool) "behaviour preserved" true (Eval.equivalent g g')

let test_cse_never_merges_memory () =
  let g = Benchmarks.memory_pipeline ~blocks:("A", "B") () in
  let g' = Transform.common_subexpression_elimination g in
  (* the two reads of A have identical shape but must both survive *)
  let reads gr =
    List.length
      (List.filter
         (fun n -> match n.Graph.op with Op.Mem_read _ -> true | _ -> false)
         (Graph.operations gr))
  in
  Alcotest.(check int) "reads preserved" (reads g) (reads g')

let test_balance_shortens_chain () =
  (* a serial accumulation: y + x*k four times gives an add chain *)
  let p =
    {
      Behavior.prog_name = "serial_mac";
      width = 16;
      inputs = [ "x"; "y" ];
      outputs = [ "acc" ];
      body =
        [
          Behavior.Assign ("acc", Behavior.Var "y");
          Behavior.For
            ( 6,
              [
                Behavior.Assign
                  ( "acc",
                    Behavior.Bin
                      ( Behavior.Add,
                        Behavior.Var "acc",
                        Behavior.Bin (Behavior.Mul, Behavior.Var "x", Behavior.Const "k") ) );
              ] );
        ];
    }
  in
  let g = Behavior.compile p in
  let g' = Transform.balance_associative g in
  Alcotest.(check int) "op count preserved" (Graph.op_count g) (Graph.op_count g');
  Alcotest.(check bool) "critical path shortened" true
    (Analysis.critical_path g' < Analysis.critical_path g);
  Alcotest.(check bool) "behaviour preserved" true (Eval.equivalent g g')

let test_balance_leaves_diverse_graphs_alone () =
  (* every intermediate of the AR lattice has multiple consumers or mixed
     ops: the transform must not change its shape *)
  let g = Benchmarks.ar_lattice_filter () in
  let g' = Transform.balance_associative g in
  Alcotest.(check int) "op count" (Graph.op_count g) (Graph.op_count g');
  Alcotest.(check int) "depth unchanged" (Analysis.critical_path g)
    (Analysis.critical_path g');
  Alcotest.(check bool) "behaviour preserved" true (Eval.equivalent g g')

let transforms_preserve_semantics =
  QCheck.Test.make ~name:"cse and balancing preserve semantics" ~count:40
    QCheck.(pair (8 -- 40) (0 -- 500))
    (fun (ops, seed) ->
      let g = Benchmarks.random_dag ~ops ~seed () in
      Eval.equivalent g (Transform.common_subexpression_elimination g)
      && Eval.equivalent g (Transform.balance_associative g)
      && Eval.equivalent g
           (Transform.balance_associative
              (Transform.common_subexpression_elimination g)))

let test_dead_node_elimination () =
  let b = Graph.builder () in
  let i = Graph.add_node b ~op:Op.Input ~width:8 in
  let live = Graph.add_node b ~name:"live" ~op:Op.Shift ~width:8 in
  let dead = Graph.add_node b ~name:"dead" ~op:Op.Shift ~width:8 in
  let o = Graph.add_node b ~op:Op.Output ~width:8 in
  Graph.add_edge b ~src:i ~dst:live;
  Graph.add_edge b ~src:i ~dst:dead;
  Graph.add_edge b ~src:live ~dst:o;
  let g = Transform.dead_node_elimination (Graph.build b) in
  Alcotest.(check int) "one op left" 1 (Graph.op_count g);
  Alcotest.(check bool) "dead gone" true
    (List.for_all (fun n -> n.Graph.name <> "dead") (Graph.nodes g))

let test_dce_keeps_memory_writes () =
  let g = Benchmarks.memory_pipeline ~blocks:("A", "B") () in
  let g' = Transform.dead_node_elimination g in
  Alcotest.(check int) "ops preserved" (Graph.op_count g) (Graph.op_count g')

let test_rename () =
  let g, _, _, _, _ = diamond () in
  let g' = Transform.rename "copy" g in
  Alcotest.(check string) "name" "copy" (Graph.name g');
  Alcotest.(check int) "size" (Graph.size g) (Graph.size g');
  Alcotest.(check int) "edges" (List.length (Graph.edges g)) (List.length (Graph.edges g'))

(* ------------------------------------------------------------------ *)
(* Benchmarks *)

let test_ar_filter_profile () =
  let g = Benchmarks.ar_lattice_filter () in
  Alcotest.(check int) "28 operations" 28 (Graph.op_count g);
  Alcotest.(check (list (pair string int))) "16 mults + 12 adds"
    [ ("add", 12); ("mult", 16) ] (Graph.op_profile g);
  Alcotest.(check int) "critical path 8" 8 (Analysis.critical_path g);
  Alcotest.(check int) "2 primary inputs" 2 (List.length (Graph.inputs g));
  Alcotest.(check int) "6 primary outputs" 6 (List.length (Graph.outputs g))

let test_ewf_profile () =
  let g = Benchmarks.elliptic_wave_filter () in
  Alcotest.(check (list (pair string int))) "26 adds + 8 mults"
    [ ("add", 26); ("mult", 8) ] (Graph.op_profile g)

let test_fir_profile () =
  let g = Benchmarks.fir_filter ~taps:16 () in
  Alcotest.(check (list (pair string int))) "16 mults, 15 adds"
    [ ("add", 15); ("mult", 16) ] (Graph.op_profile g);
  (* balanced tree: depth = 1 mult + ceil(log2 16) adds *)
  Alcotest.(check int) "depth" 5 (Analysis.critical_path g)

let test_fir_validates () =
  match Benchmarks.fir_filter ~taps:1 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "taps=1 accepted"

let test_diffeq_profile () =
  let g = Benchmarks.diffeq () in
  Alcotest.(check int) "11 ops" 11 (Graph.op_count g);
  Alcotest.(check (list (pair string int))) "profile"
    [ ("add", 5); ("mult", 6) ] (Graph.op_profile g)

let test_dct8_profile () =
  let g = Benchmarks.dct8 () in
  Alcotest.(check (list (pair string int))) "29 adds + 11 mults"
    [ ("add", 29); ("mult", 11) ] (Graph.op_profile g);
  Alcotest.(check int) "8 inputs" 8 (List.length (Graph.inputs g));
  Alcotest.(check int) "8 outputs" 8 (List.length (Graph.outputs g));
  Alcotest.(check bool) "deeper than the AR filter" true
    (Analysis.critical_path g >= 5)

let test_memory_pipeline_profile () =
  let g = Benchmarks.memory_pipeline ~blocks:("A", "B") () in
  Alcotest.(check (list string)) "blocks" [ "A"; "B" ] (Graph.memory_blocks g);
  Alcotest.(check bool) "has per-block memport ops" true
    (List.mem_assoc "memport:A" (Graph.op_profile g)
    && List.mem_assoc "memport:B" (Graph.op_profile g))

let test_random_dag_deterministic () =
  let g1 = Benchmarks.random_dag ~ops:20 ~seed:7 () in
  let g2 = Benchmarks.random_dag ~ops:20 ~seed:7 () in
  Alcotest.(check int) "same size" (Graph.size g1) (Graph.size g2);
  Alcotest.(check int) "same edges" (List.length (Graph.edges g1))
    (List.length (Graph.edges g2))

let random_dag_always_valid =
  QCheck.Test.make ~name:"random dags build and are acyclic" ~count:50
    QCheck.(pair (1 -- 60) (0 -- 1000))
    (fun (ops, seed) ->
      let g = Benchmarks.random_dag ~ops ~seed () in
      Graph.op_count g = ops && Analysis.critical_path g >= 1)

(* ------------------------------------------------------------------ *)
(* Partition *)

let test_whole_partitioning () =
  let g = Benchmarks.ar_lattice_filter () in
  let pg = Partition.whole g in
  Alcotest.(check int) "one part" 1 (List.length pg.Partition.parts);
  Alcotest.(check int) "covers all" 28
    (List.length (List.hd pg.Partition.parts).Partition.members)

let test_by_levels_balanced () =
  let g = Benchmarks.ar_lattice_filter () in
  let pg = Partition.by_levels g ~k:2 in
  Alcotest.(check int) "two parts" 2 (List.length pg.Partition.parts);
  let sizes = List.map (fun p -> List.length p.Partition.members) pg.Partition.parts in
  Alcotest.(check int) "covers all" 28 (List.fold_left ( + ) 0 sizes);
  List.iter
    (fun s -> Alcotest.(check bool) "roughly balanced" true (s >= 7 && s <= 21))
    sizes

let test_by_levels_three () =
  let g = Benchmarks.ar_lattice_filter () in
  let pg = Partition.by_levels g ~k:3 in
  Alcotest.(check int) "three parts" 3 (List.length pg.Partition.parts)

let test_by_levels_validates () =
  let g = Benchmarks.ar_lattice_filter () in
  (match Partition.by_levels g ~k:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "k=0 accepted");
  match Partition.by_levels g ~k:100 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "k>levels accepted"

let test_partitioning_rejects_double_assignment () =
  let g, _, m1, m2, s = diamond () in
  match
    Partition.partitioning g
      [ Partition.make ~label:"A" [ m1; m2 ]; Partition.make ~label:"B" [ m2; s ] ]
  with
  | exception Partition.Invalid_partitioning _ -> ()
  | _ -> Alcotest.fail "double assignment accepted"

let test_partitioning_rejects_uncovered () =
  let g, _, m1, _, _ = diamond () in
  match Partition.partitioning g [ Partition.make ~label:"A" [ m1 ] ] with
  | exception Partition.Invalid_partitioning _ -> ()
  | _ -> Alcotest.fail "uncovered operation accepted"

let test_partitioning_rejects_duplicate_label () =
  let g, _, m1, m2, s = diamond () in
  match
    Partition.partitioning g
      [ Partition.make ~label:"A" [ m1; m2 ]; Partition.make ~label:"A" [ s ] ]
  with
  | exception Partition.Invalid_partitioning _ -> ()
  | _ -> Alcotest.fail "duplicate label accepted"

let test_partitioning_rejects_mutual_dependency () =
  (* chain x1 -> x2 -> x3 with x1,x3 in P1 and x2 in P2 *)
  let b = Graph.builder () in
  let i = Graph.add_node b ~op:Op.Input ~width:8 in
  let x1 = Graph.add_node b ~op:Op.Shift ~width:8 in
  let x2 = Graph.add_node b ~op:Op.Shift ~width:8 in
  let x3 = Graph.add_node b ~op:Op.Shift ~width:8 in
  Graph.add_edge b ~src:i ~dst:x1;
  Graph.add_edge b ~src:x1 ~dst:x2;
  Graph.add_edge b ~src:x2 ~dst:x3;
  let g = Graph.build b in
  match
    Partition.partitioning g
      [ Partition.make ~label:"P1" [ x1; x3 ]; Partition.make ~label:"P2" [ x2 ] ]
  with
  | exception Partition.Invalid_partitioning _ -> ()
  | _ -> Alcotest.fail "cyclic quotient accepted"

let test_partition_make_rejects_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Partition.make: empty partition")
    (fun () -> ignore (Partition.make ~label:"X" []))

let test_flows_diamond () =
  let g, _, m1, m2, s = diamond () in
  let pg =
    Partition.partitioning g
      [ Partition.make ~label:"A" [ m1; m2 ]; Partition.make ~label:"B" [ s ] ]
  in
  let flows = Partition.flows pg in
  Alcotest.(check int) "one flow" 1 (List.length flows);
  let f = List.hd flows in
  Alcotest.(check string) "producer" "A" f.Partition.producer;
  Alcotest.(check string) "consumer" "B" f.Partition.consumer;
  Alcotest.(check int) "32 bits (two values)" 32 f.Partition.bits

let test_flow_value_counted_once_per_consumer () =
  (* one value consumed twice by the same partition counts once *)
  let b = Graph.builder () in
  let i = Graph.add_node b ~op:Op.Input ~width:8 in
  let src = Graph.add_node b ~op:Op.Shift ~width:8 in
  let u1 = Graph.add_node b ~op:Op.Shift ~width:8 in
  let u2 = Graph.add_node b ~op:Op.Shift ~width:8 in
  Graph.add_edge b ~src:i ~dst:src;
  Graph.add_edge b ~src ~dst:u1;
  Graph.add_edge b ~src ~dst:u2;
  let g = Graph.build b in
  let pg =
    Partition.partitioning g
      [ Partition.make ~label:"A" [ src ]; Partition.make ~label:"B" [ u1; u2 ] ]
  in
  let f = List.hd (Partition.flows pg) in
  Alcotest.(check int) "8 bits only" 8 f.Partition.bits

let test_external_io_bits () =
  let g, _, m1, m2, s = diamond () in
  let pg =
    Partition.partitioning g
      [ Partition.make ~label:"A" [ m1; m2 ]; Partition.make ~label:"B" [ s ] ]
  in
  let a = Partition.find pg "A" and b = Partition.find pg "B" in
  Alcotest.(check int) "A reads the input" 16 (Partition.external_input_bits pg a);
  Alcotest.(check int) "B reads nothing" 0 (Partition.external_input_bits pg b);
  Alcotest.(check int) "B drives output" 16 (Partition.external_output_bits pg b);
  Alcotest.(check int) "A drives nothing" 0 (Partition.external_output_bits pg a)

let test_quotient_and_topo () =
  let g = Benchmarks.ar_lattice_filter () in
  let pg = Partition.by_levels g ~k:3 in
  let edges = Partition.quotient_edges pg in
  Alcotest.(check bool) "has edges" true (List.length edges >= 2);
  let topo = Partition.topological_parts pg in
  Alcotest.(check int) "all parts" 3 (List.length topo);
  (* every edge must go forward in the topological order *)
  let pos label =
    let rec go i = function
      | [] -> -1
      | p :: rest -> if p.Partition.label = label then i else go (i + 1) rest
    in
    go 0 topo
  in
  List.iter
    (fun (s, d) -> Alcotest.(check bool) "forward edge" true (pos s < pos d))
    edges

let test_subgraph_roundtrip () =
  let g = Benchmarks.ar_lattice_filter () in
  let pg = Partition.by_levels g ~k:2 in
  let total_ops =
    Chop_util.Listx.sum_by
      (fun p -> Graph.op_count (Partition.subgraph pg p))
      pg.Partition.parts
  in
  Alcotest.(check int) "subgraphs cover all ops" 28 total_ops

let test_part_of_valid () =
  let g, _, m1, m2, s = diamond () in
  let pg =
    Partition.partitioning g
      [ Partition.make ~label:"A" [ m1; m2 ]; Partition.make ~label:"B" [ s ] ]
  in
  Alcotest.(check string) "m1 in A" "A" (Partition.part_of pg m1).Partition.label;
  Alcotest.check_raises "missing" Not_found (fun () ->
      ignore (Partition.part_of pg 999))

let test_cut_bits_total () =
  let g, _, m1, m2, s = diamond () in
  let pg =
    Partition.partitioning g
      [ Partition.make ~label:"A" [ m1; m2 ]; Partition.make ~label:"B" [ s ] ]
  in
  Alcotest.(check int) "32 bits" 32 (Partition.cut_bits_total pg)

let by_levels_always_legal =
  QCheck.Test.make ~name:"by_levels yields valid partitionings" ~count:50
    QCheck.(pair (8 -- 60) (1 -- 4))
    (fun (ops, k) ->
      let g = Benchmarks.random_dag ~ops ~seed:(ops * 31) () in
      let levels = List.length (Analysis.levels g) in
      let k = min k levels in
      let pg = if k = 1 then Partition.whole g else Partition.by_levels g ~k in
      Chop_util.Listx.sum_by
        (fun p -> List.length p.Partition.members)
        pg.Partition.parts
      = ops)

(* ------------------------------------------------------------------ *)
(* Eval *)

let ar_consts g v =
  List.filter_map
    (fun n -> if n.Graph.op = Op.Const then Some (n.Graph.name, v) else None)
    (Graph.nodes g)

let test_eval_diamond () =
  let g, _, _, _, _ = diamond () in
  (* (i*c) + (i*c) with i=3, c=5 -> 30 *)
  let out = Eval.run ~inputs:[ ("i", 3) ] ~consts:[ ("c", 5) ] g in
  Alcotest.(check (list (pair string int))) "sum of products" [ ("o", 30) ] out

let test_eval_masking () =
  let b = Graph.builder () in
  let i = Graph.add_node b ~name:"i" ~op:Op.Input ~width:4 in
  let m = Graph.add_node b ~name:"m" ~op:Op.Mult ~width:4 in
  Graph.add_edge b ~src:i ~dst:m;
  Graph.add_edge b ~src:i ~dst:m;
  let o = Graph.add_node b ~name:"o" ~op:Op.Output ~width:4 in
  Graph.add_edge b ~src:m ~dst:o;
  let g = Graph.build b in
  (* 7*7 = 49 = 0b110001 -> masked to 4 bits = 1 *)
  Alcotest.(check (list (pair string int))) "masked" [ ("o", 1) ]
    (Eval.run ~inputs:[ ("i", 7) ] g)

let test_eval_select_compare () =
  let p =
    {
      Behavior.prog_name = "minmax";
      width = 8;
      inputs = [ "a"; "b" ];
      outputs = [ "min" ];
      body =
        [
          Behavior.Assign
            ( "min",
              Behavior.Mux
                ( Behavior.Bin (Behavior.Less, Behavior.Var "a", Behavior.Var "b"),
                  Behavior.Var "a", Behavior.Var "b" ) );
        ];
    }
  in
  let g = Behavior.compile p in
  Alcotest.(check (list (pair string int))) "min(3,9)=3" [ ("out_min", 3) ]
    (Eval.run ~inputs:[ ("a", 3); ("b", 9) ] g);
  Alcotest.(check (list (pair string int))) "min(9,3)=3" [ ("out_min", 3) ]
    (Eval.run ~inputs:[ ("a", 9); ("b", 3) ] g)

let test_eval_memory () =
  let g = Benchmarks.memory_pipeline ~blocks:("A", "B") () in
  let memory = Eval.constant_memory 7 in
  let out = Eval.run ~consts:(ar_consts g 2) ~memory g in
  (* acc = 7*2 + 7*2 = 28, written to B *)
  Alcotest.(check (list (pair string int))) "acc" [ ("y", 28) ] out;
  Alcotest.(check (list (pair string int))) "write recorded" [ ("B", 28) ]
    memory.Eval.writes

let test_eval_unknown_binding_rejected () =
  let g, _, _, _, _ = diamond () in
  match Eval.run ~inputs:[ ("ghost", 1) ] g with
  | exception Eval.Eval_error _ -> ()
  | _ -> Alcotest.fail "unknown input accepted"

let test_eval_equivalent_rename () =
  let g = Benchmarks.ar_lattice_filter () in
  Alcotest.(check bool) "graph equals its copy" true
    (Eval.equivalent g (Transform.rename "copy" g));
  let other = Benchmarks.diffeq () in
  Alcotest.(check bool) "different io shape" false (Eval.equivalent g other)

let test_partitioning_preserves_semantics () =
  let g = Benchmarks.ar_lattice_filter () in
  let inputs = [ ("f_in", 37); ("b_in", 113) ] in
  let consts = ar_consts g 3 in
  let sort = List.sort compare in
  let whole = sort (Eval.run ~inputs ~consts g) in
  List.iter
    (fun k ->
      let pg = if k = 1 then Partition.whole g else Partition.by_levels g ~k in
      Alcotest.(check bool)
        (Printf.sprintf "k=%d equals whole" k)
        true
        (sort (Eval.run_partitioned ~inputs ~consts pg) = whole))
    [ 1; 2; 3 ]

let partitioning_preserves_semantics_prop =
  QCheck.Test.make ~name:"any level partitioning preserves semantics" ~count:40
    QCheck.(triple (8 -- 40) (0 -- 300) (pair (1 -- 4) (0 -- 4095)))
    (fun (ops, seed, (k, stim)) ->
      let g = Benchmarks.random_dag ~ops ~seed () in
      let levels = List.length (Analysis.levels g) in
      let k = max 1 (min k levels) in
      let pg = if k = 1 then Partition.whole g else Partition.by_levels g ~k in
      let inputs =
        List.map (fun n -> (n.Graph.name, (stim + n.Graph.id) land 0xfff))
          (Graph.inputs g)
      in
      let sort = List.sort compare in
      sort (Eval.run ~inputs g) = sort (Eval.run_partitioned ~inputs pg))

(* ------------------------------------------------------------------ *)
(* Behavior *)

let mac_program =
  {
    Behavior.prog_name = "mac";
    width = 16;
    inputs = [ "x"; "y" ];
    outputs = [ "acc" ];
    body =
      [
        Behavior.Assign ("acc", Behavior.Var "y");
        Behavior.For
          ( 4,
            [
              Behavior.Assign
                ( "acc",
                  Behavior.Bin
                    ( Behavior.Add,
                      Behavior.Var "acc",
                      Behavior.Bin (Behavior.Mul, Behavior.Var "x", Behavior.Const "k") ) );
            ] );
      ];
  }

let test_behavior_mac () =
  let g = Behavior.compile mac_program in
  Alcotest.(check (list (pair string int))) "4 adds + 4 mults"
    [ ("add", 4); ("mult", 4) ] (Graph.op_profile g);
  (* the accumulation chain is sequential: depth 1 mult + 4 adds *)
  Alcotest.(check int) "depth" 5 (Analysis.critical_path g);
  Alcotest.(check int) "outputs" 1 (List.length (Graph.outputs g));
  (* the coefficient is interned: one Const node *)
  Alcotest.(check int) "one const" 1
    (List.length (List.filter (fun n -> n.Graph.op = Op.Const) (Graph.nodes g)))

let test_behavior_if_merges () =
  let p =
    {
      Behavior.prog_name = "sel";
      width = 8;
      inputs = [ "a"; "b" ];
      outputs = [ "r" ];
      body =
        [
          Behavior.If
            ( Behavior.Bin (Behavior.Less, Behavior.Var "a", Behavior.Var "b"),
              [ Behavior.Assign ("r", Behavior.Var "a") ],
              [ Behavior.Assign ("r", Behavior.Var "b") ] );
        ];
    }
  in
  let g = Behavior.compile p in
  let selects =
    List.filter (fun n -> n.Graph.op = Op.Select) (Graph.operations g)
  in
  Alcotest.(check int) "one select merge" 1 (List.length selects);
  Alcotest.(check bool) "has compare" true
    (List.exists (fun n -> n.Graph.op = Op.Compare) (Graph.operations g))

let test_behavior_if_same_value_no_merge () =
  let p =
    {
      Behavior.prog_name = "nomerge";
      width = 8;
      inputs = [ "a" ];
      outputs = [ "r" ];
      body =
        [
          Behavior.Assign ("r", Behavior.Var "a");
          Behavior.If
            ( Behavior.Bin (Behavior.Less, Behavior.Var "a", Behavior.Const "c0"),
              [],
              [] );
        ];
    }
  in
  let g = Behavior.compile p in
  Alcotest.(check int) "no select" 0
    (List.length (List.filter (fun n -> n.Graph.op = Op.Select) (Graph.operations g)))

let test_behavior_memory_ops () =
  let p =
    {
      Behavior.prog_name = "memio";
      width = 16;
      inputs = [];
      outputs = [ "v" ];
      body =
        [
          Behavior.Assign ("v", Behavior.Load "A");
          Behavior.Store ("B", Behavior.Bin (Behavior.Mul, Behavior.Var "v", Behavior.Const "k"));
        ];
    }
  in
  let g = Behavior.compile p in
  Alcotest.(check (list string)) "blocks" [ "A"; "B" ] (Graph.memory_blocks g)

let test_behavior_errors () =
  let base =
    { Behavior.prog_name = "bad"; width = 16; inputs = []; outputs = []; body = [] }
  in
  let expect_error p =
    match Behavior.compile p with
    | exception Behavior.Compile_error _ -> ()
    | _ -> Alcotest.fail "compile error expected"
  in
  expect_error { base with Behavior.body = [ Behavior.Assign ("x", Behavior.Var "nope") ] };
  expect_error { base with Behavior.outputs = [ "unset" ] };
  expect_error { base with Behavior.inputs = [ "a"; "a" ] };
  expect_error { base with Behavior.body = [ Behavior.For (0, [ Behavior.Assign ("x", Behavior.Const "c") ]) ] };
  expect_error { base with Behavior.width = 0 }

let test_behavior_stmt_count () =
  Alcotest.(check int) "unrolled size" 5 (Behavior.stmt_count mac_program)

let test_behavior_feeds_chop () =
  (* end-to-end: compile a program, partition it, explore it *)
  let g = Behavior.compile mac_program in
  let pg = Partition.whole g in
  Alcotest.(check int) "covers ops" 8
    (List.length (List.hd pg.Partition.parts).Partition.members)

(* ------------------------------------------------------------------ *)
(* Dot *)

let test_dot_output () =
  let g, _, _, _, _ = diamond () in
  let dot = Dot.of_graph g in
  Alcotest.(check bool) "digraph" true
    (String.length dot > 10 && String.sub dot 0 7 = "digraph");
  let pg = Partition.whole g in
  let dot2 = Dot.of_partitioning pg in
  Alcotest.(check bool) "has cluster" true
    (List.exists
       (fun line ->
         let l = String.trim line in
         String.length l >= 8 && String.sub l 0 8 = "subgraph")
       (String.split_on_char '\n' dot2))

(* ---------- canonical structural digests (Canon) ---------- *)

(* The content-addressed cache's soundness rests on this property: however
   a graph was constructed — node ids permuted, node and graph names
   changed — its canonical digest is unchanged. *)
let canon_digest_construction_invariant =
  QCheck.Test.make ~name:"canon digest invariant under construction order"
    ~count:60
    QCheck.(triple (8 -- 40) (0 -- 500) (1 -- 1000))
    (fun (ops, seed, shuffle) ->
      let g = Benchmarks.random_dag ~ops ~seed () in
      let g2 = Transform.renumber ~seed:shuffle g in
      let g3 = Transform.rename "other-name" g2 in
      String.equal (Canon.digest g) (Canon.digest g2)
      && String.equal (Canon.digest g) (Canon.digest g3))

(* the per-partition view the prediction cache actually keys on: the same
   spec rebuilt in another construction order yields by-levels partition
   subgraphs with pairwise equal digests (and, for > 1 partition,
   different per-construction signatures somewhere) *)
let canon_partition_subgraphs_invariant =
  QCheck.Test.make ~name:"partition subgraph digests survive renumbering"
    ~count:40
    QCheck.(triple (10 -- 40) (0 -- 300) (2 -- 4))
    (fun (ops, seed, k) ->
      let g = Benchmarks.random_dag ~ops ~seed () in
      (* a shallow random dag may have fewer levels than the drawn k, and
         by_levels rejects k > levels — clamp rather than flake *)
      let k = min k (List.length (Analysis.levels g)) in
      let g2 = Transform.renumber ~seed:(seed + 1) g in
      let subs g =
        let pg = Partition.by_levels g ~k in
        List.map (fun p -> Partition.subgraph pg p) pg.Partition.parts
      in
      List.for_all2
        (fun s1 s2 -> String.equal (Canon.digest s1) (Canon.digest s2))
        (subs g) (subs g2))

let test_canon_distinguishes_benchmarks () =
  let digests =
    List.map
      (fun g -> Canon.digest g)
      [
        Benchmarks.ar_lattice_filter ();
        Benchmarks.elliptic_wave_filter ();
        Benchmarks.fir_filter ~taps:8 ();
        Benchmarks.fir_filter ~taps:16 ();
        Benchmarks.diffeq ();
        Benchmarks.dct8 ();
      ]
  in
  Alcotest.(check int)
    "pairwise distinct digests"
    (List.length digests)
    (List.length (List.sort_uniq String.compare digests))

(* nearby non-isomorphic graphs must not collide: vary one op, one width,
   one edge *)
let test_canon_collision_sanity () =
  let base ~mid_op ~mid_width ~extra_edge =
    let b = Graph.builder () in
    let i = Graph.add_node b ~op:Op.Input ~width:16 in
    let c = Graph.add_node b ~op:Op.Const ~width:16 in
    let m = Graph.add_node b ~op:mid_op ~width:mid_width in
    let s = Graph.add_node b ~op:Op.Add ~width:16 in
    let o = Graph.add_node b ~op:Op.Output ~width:16 in
    Graph.add_edge b ~src:i ~dst:m;
    Graph.add_edge b ~src:c ~dst:m;
    Graph.add_edge b ~src:m ~dst:s;
    Graph.add_edge b ~src:(if extra_edge then c else i) ~dst:s;
    Graph.add_edge b ~src:s ~dst:o;
    Graph.build b
  in
  let g0 = base ~mid_op:Op.Mult ~mid_width:16 ~extra_edge:false in
  let variants =
    [
      base ~mid_op:Op.Add ~mid_width:16 ~extra_edge:false;
      base ~mid_op:Op.Mult ~mid_width:8 ~extra_edge:false;
      base ~mid_op:Op.Mult ~mid_width:16 ~extra_edge:true;
    ]
  in
  List.iter
    (fun v ->
      Alcotest.(check bool)
        "digest differs" false
        (String.equal (Canon.digest g0) (Canon.digest v)))
    variants

let test_canon_hash_consing () =
  let g = Benchmarks.elliptic_wave_filter () in
  let g2 = Transform.renumber g in
  let c1 = Canon.of_graph g and c2 = Canon.of_graph g2 in
  Alcotest.(check bool) "interned to one value" true (Canon.equal c1 c2);
  Alcotest.(check bool)
    "constructions differ" false
    (String.equal (Graph.signature g) (Graph.signature g2))

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "chop_dfg"
    [
      ( "op",
        [
          tc "arity" `Quick test_op_arity;
          tc "functional classes" `Quick test_op_classes;
          tc "boundary rejected" `Quick test_op_class_rejects_boundary;
          tc "memory ops" `Quick test_op_memory;
          tc "computational" `Quick test_op_computational;
        ] );
      ( "graph",
        [
          tc "build diamond" `Quick test_graph_build_diamond;
          tc "rejects cycle" `Quick test_graph_rejects_cycle;
          tc "rejects bad arity" `Quick test_graph_rejects_bad_arity;
          tc "rejects fed input" `Quick test_graph_rejects_input_with_preds;
          tc "rejects bad width" `Quick test_graph_rejects_bad_width;
          tc "rejects unknown edge" `Quick test_graph_rejects_unknown_edge;
          tc "duplicate edges ok" `Quick test_graph_duplicate_edges_allowed;
          tc "succs/preds" `Quick test_graph_succs_preds;
          tc "io bits" `Quick test_graph_io_bits;
          tc "node lookup" `Quick test_graph_node_lookup;
          tc "memory blocks" `Quick test_graph_memory_blocks;
          tc "induced basic" `Quick test_induced_basic;
          tc "induced clones consts" `Quick test_induced_const_cloned;
          tc "induced rejects boundary" `Quick test_induced_rejects_boundary;
          tc "induced whole" `Quick test_induced_whole_has_no_cut;
        ] );
      ( "analysis",
        [
          tc "asap" `Quick test_asap_diamond;
          tc "critical path unit" `Quick test_critical_path_unit;
          tc "critical path weighted" `Quick test_critical_path_weighted;
          tc "alap + slack" `Quick test_alap_slack;
          tc "alap too short" `Quick test_alap_too_short;
          tc "alap long horizon" `Quick test_alap_longer_horizon;
          tc "critical path ns" `Quick test_critical_path_ns;
          tc "levels" `Quick test_levels;
          tc "max width profile" `Quick test_max_width_profile;
          tc "reachable" `Quick test_reachable;
        ] );
      ( "transform",
        [
          tc "unroll counts" `Quick test_unroll_counts;
          tc "unroll once" `Quick test_unroll_once_is_body;
          tc "unroll validates" `Quick test_unroll_validates;
          tc "unroll acyclic" `Quick test_unroll_acyclic_quotient;
          tc "cse merges duplicates" `Quick test_cse_merges_duplicates;
          tc "cse respects order" `Quick test_cse_respects_order;
          tc "cse never merges memory" `Quick test_cse_never_merges_memory;
          tc "balance shortens chains" `Quick test_balance_shortens_chain;
          tc "balance conservative" `Quick test_balance_leaves_diverse_graphs_alone;
          QCheck_alcotest.to_alcotest transforms_preserve_semantics;
          tc "dead node elimination" `Quick test_dead_node_elimination;
          tc "dce keeps memory writes" `Quick test_dce_keeps_memory_writes;
          tc "rename" `Quick test_rename;
        ] );
      ( "benchmarks",
        [
          tc "ar filter (Fig 6)" `Quick test_ar_filter_profile;
          tc "ewf" `Quick test_ewf_profile;
          tc "fir" `Quick test_fir_profile;
          tc "fir validates" `Quick test_fir_validates;
          tc "diffeq" `Quick test_diffeq_profile;
          tc "dct8" `Quick test_dct8_profile;
          tc "memory pipeline" `Quick test_memory_pipeline_profile;
          tc "random deterministic" `Quick test_random_dag_deterministic;
          QCheck_alcotest.to_alcotest random_dag_always_valid;
        ] );
      ( "partition",
        [
          tc "whole" `Quick test_whole_partitioning;
          tc "by_levels balanced" `Quick test_by_levels_balanced;
          tc "by_levels three" `Quick test_by_levels_three;
          tc "by_levels validates" `Quick test_by_levels_validates;
          tc "rejects double assignment" `Quick test_partitioning_rejects_double_assignment;
          tc "rejects uncovered" `Quick test_partitioning_rejects_uncovered;
          tc "rejects duplicate label" `Quick test_partitioning_rejects_duplicate_label;
          tc "rejects mutual dependency" `Quick test_partitioning_rejects_mutual_dependency;
          tc "rejects empty" `Quick test_partition_make_rejects_empty;
          tc "flows" `Quick test_flows_diamond;
          tc "flow dedup per consumer" `Quick test_flow_value_counted_once_per_consumer;
          tc "external io bits" `Quick test_external_io_bits;
          tc "quotient + topo" `Quick test_quotient_and_topo;
          tc "subgraph roundtrip" `Quick test_subgraph_roundtrip;
          tc "part_of" `Quick test_part_of_valid;
          tc "cut bits total" `Quick test_cut_bits_total;
          QCheck_alcotest.to_alcotest by_levels_always_legal;
        ] );
      ( "eval",
        [
          tc "diamond" `Quick test_eval_diamond;
          tc "width masking" `Quick test_eval_masking;
          tc "select + compare" `Quick test_eval_select_compare;
          tc "memory" `Quick test_eval_memory;
          tc "unknown binding" `Quick test_eval_unknown_binding_rejected;
          tc "equivalence check" `Quick test_eval_equivalent_rename;
          tc "partitioning preserves semantics" `Quick test_partitioning_preserves_semantics;
          QCheck_alcotest.to_alcotest partitioning_preserves_semantics_prop;
        ] );
      ( "behavior",
        [
          tc "mac program" `Quick test_behavior_mac;
          tc "if merges with select" `Quick test_behavior_if_merges;
          tc "unchanged vars unmerged" `Quick test_behavior_if_same_value_no_merge;
          tc "memory ops" `Quick test_behavior_memory_ops;
          tc "compile errors" `Quick test_behavior_errors;
          tc "stmt count" `Quick test_behavior_stmt_count;
          tc "feeds the partitioner" `Quick test_behavior_feeds_chop;
        ] );
      ( "canon",
        [
          QCheck_alcotest.to_alcotest canon_digest_construction_invariant;
          QCheck_alcotest.to_alcotest canon_partition_subgraphs_invariant;
          tc "distinguishes benchmarks" `Quick test_canon_distinguishes_benchmarks;
          tc "collision sanity" `Quick test_canon_collision_sanity;
          tc "hash consing" `Quick test_canon_hash_consing;
        ] );
      ("dot", [ tc "output" `Quick test_dot_output ]);
    ]
