(* Tests for the automatic partitioner (Chop_auto): validity of the
   optimized partitioning, determinism per seed, pin/community
   constraints — plus the scheduler failure-path hardening this PR leans
   on (typed List_sched.No_progress, force-directed zero-width windows,
   Autopart's exactly-k guarantee) and the session/optimize server op. *)

module G = Chop_dfg.Graph
module P = Chop_dfg.Partition
module Json = Chop_util.Json
module Protocol = Chop_server.Protocol
module Server = Chop_server.Server
module Ops = Chop_server.Ops

let private_config () =
  Chop.Explore.Config.make ~jobs:1
    ~cache:(Chop.Explore.Config.Custom (Chop.Pred_cache.create ()))
    ()

let bench_spec ?(k = 2) ?(perf = 30000.) ?(delay = 30000.)
    ?(strategy = Chop_baseline.Autopart.Min_cut 1) ?(multicycle = false)
    ?(impls = []) name =
  let graph =
    match Ops.graph_of_name name with Ok g -> g | Error m -> failwith m
  in
  Ops.build_spec
    ~processors:(Ops.processors_for ~benchmark:name ~impls)
    ~impls ~graph ~partitions:k ~package:Chop_tech.Mosis.package_84 ~perf
    ~delay ~multicycle ~strategy ()

let random_spec ~ops ~seed ~k =
  let graph = Chop_dfg.Benchmarks.random_dag ~ops ~seed () in
  Chop.Rig.custom ~graph
    ~partitioning:
      (Chop_baseline.Autopart.generate graph ~k
         (Chop_baseline.Autopart.Min_cut seed))
    ~package:Chop_tech.Mosis.package_84
    ~clocks:
      (Chop_tech.Clocking.make ~main:Chop_tech.Mosis.main_clock
         ~datapath_ratio:10 ~transfer_ratio:1)
    ~style:(Chop_tech.Style.both Chop_tech.Style.Single_cycle)
    ~criteria:(Chop_bad.Feasibility.criteria ~perf:30000. ~delay:30000. ())
    ()

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let first_ops graph n =
  G.operations graph
  |> List.map (fun (nd : G.node) -> nd.G.id)
  |> List.sort Int.compare
  |> Chop_util.Listx.take n

(* ------------------------------------------------------------------ *)
(* Chop_auto *)

let auto_yields_valid_partitioning =
  QCheck.Test.make ~name:"auto yields a valid partitioning of the same k"
    ~count:12
    QCheck.(triple (12 -- 26) (0 -- 100) (2 -- 3))
    (fun (ops, seed, k) ->
      let spec = random_spec ~ops ~seed ~k in
      let o =
        Chop_auto.run ~seed ~max_moves:12 ~config:(private_config ()) spec
      in
      let parts = o.Chop_auto.spec.Chop.Spec.partitioning.P.parts in
      (* revalidating from scratch raises on any broken invariant
         (coverage, disjointness, acyclic quotient) *)
      let _ = P.partitioning o.Chop_auto.spec.Chop.Spec.graph parts in
      List.length parts = k
      && List.for_all (fun (p : P.t) -> p.P.members <> []) parts)

let test_auto_deterministic () =
  let render () =
    let o =
      Chop_auto.run ~seed:3 ~config:(private_config ())
        (bench_spec ~k:2 ~perf:6000. "diffeq")
    in
    (Ops.render_auto o.Chop_auto.spec o, o.Chop_auto.moves_tried)
  in
  let r1, t1 = render () and r2, t2 = render () in
  Alcotest.(check string) "byte-identical rendering per seed" r1 r2;
  Alcotest.(check int) "same move count" t1 t2

let test_auto_honors_pins () =
  let spec = bench_spec ~k:2 "ar" in
  (* pick a pin the seed partitioning can satisfy with one legal move *)
  let pg = spec.Chop.Spec.partitioning in
  let labels = List.map (fun (p : P.t) -> p.P.label) pg.P.parts in
  let pinned, target =
    List.concat_map
      (fun (p : P.t) -> List.map (fun m -> (m, p.P.label)) p.P.members)
      pg.P.parts
    |> List.find_map (fun (op, cur) ->
           List.find_map
             (fun l ->
               if String.equal l cur then None
               else
                 match P.move_op pg ~op ~to_:l with
                 | Ok _ -> Some (op, l)
                 | Error _ -> None)
             labels)
    |> Option.get
  in
  let constraints =
    { Chop_auto.pins = [ (pinned, target) ]; communities = [] }
  in
  let o =
    Chop_auto.run ~constraints ~max_moves:24 ~config:(private_config ()) spec
  in
  Alcotest.(check string) "pinned op ends in its partition" target
    (P.part_of o.Chop_auto.spec.Chop.Spec.partitioning pinned).P.label

let test_auto_honors_communities () =
  let spec = bench_spec ~k:2 "ar" in
  let graph = spec.Chop.Spec.graph in
  let members = first_ops graph 3 in
  let constraints = { Chop_auto.pins = []; communities = [ members ] } in
  let o =
    Chop_auto.run ~constraints ~max_moves:24 ~config:(private_config ()) spec
  in
  let labels =
    List.sort_uniq String.compare
      (List.map
         (fun op ->
           (P.part_of o.Chop_auto.spec.Chop.Spec.partitioning op).P.label)
         members)
  in
  Alcotest.(check int) "community shares one partition" 1 (List.length labels)

let test_auto_multilevel_depth () =
  (* with the automatic coarse target (absent [coarse_target]), a graph
     this size must actually coarsen — the fixed 2048 default used to
     leave every run at a single level *)
  let spec = random_spec ~ops:30 ~seed:7 ~k:2 in
  let o =
    Chop_auto.run ~seed:7 ~max_moves:4 ~config:(private_config ()) spec
  in
  Alcotest.(check bool) "at least 2 levels" true (o.Chop_auto.levels >= 2);
  Alcotest.(check bool) "coarsest level is coarser than the base" true
    (o.Chop_auto.coarse_clusters < 30);
  (* explicit targets are still honored: large enough means no coarsening *)
  let o1 =
    Chop_auto.run ~seed:7 ~max_moves:4 ~coarse_target:2048
      ~config:(private_config ()) spec
  in
  Alcotest.(check int) "explicit large target stays single-level" 1
    o1.Chop_auto.levels

(* The HW/SW co-design case study: on pcm_pwm the all-hardware seed is
   clock-bound and the all-software seed is memory-starved into narrow
   issue; refinement with model flips enabled must land on a genuinely
   mixed split that beats both pure seeds on the total score order. *)
let best_perf spec =
  let session = Chop.Explore.Session.create (private_config ()) spec in
  Fun.protect
    ~finally:(fun () -> Chop.Explore.Session.close session)
    (fun () ->
      let r = Chop.Explore.Session.run session in
      match r.Chop.Explore.outcome.Chop.Search.feasible with
      | best :: _ -> (Chop.Integration.objectives best).(0)
      | [] -> infinity)

let test_pcm_pwm_codesign_triangle () =
  let all_hw = best_perf (bench_spec ~multicycle:true "pcm_pwm") in
  let all_sw =
    best_perf
      (bench_spec ~multicycle:true
         ~impls:[ ("P1", "cpu"); ("P2", "cpu") ]
         "pcm_pwm")
  in
  Alcotest.(check bool) "both pure seeds are feasible" true
    (all_hw < infinity && all_sw < infinity);
  let run () =
    Chop_auto.run ~seed:1 ~config:(private_config ())
      (bench_spec ~multicycle:true "pcm_pwm")
  in
  let o = run () in
  Alcotest.(check bool) "refinement rebinds at least one partition" true
    (o.Chop_auto.impl_flips >= 1);
  let impls =
    List.map
      (fun (p : P.t) ->
        Chop.Spec.impl_of_partition o.Chop_auto.spec p.P.label)
      o.Chop_auto.spec.Chop.Spec.partitioning.P.parts
  in
  Alcotest.(check bool) "the winning split is genuinely mixed" true
    (List.mem "hw" impls && List.mem "cpu" impls);
  let mixed =
    match o.Chop_auto.report.Chop.Explore.outcome.Chop.Search.feasible with
    | best :: _ -> (Chop.Integration.objectives best).(0)
    | [] -> Alcotest.fail "mixed result infeasible"
  in
  Alcotest.(check bool) "mixed beats the all-hardware seed" true
    (mixed < all_hw);
  Alcotest.(check bool) "mixed beats the all-software seed" true
    (mixed < all_sw);
  (* deterministic under the fixed seed, byte for byte *)
  let o2 = run () in
  Alcotest.(check string) "deterministic rendering"
    (Ops.render_auto o.Chop_auto.spec o)
    (Ops.render_auto o2.Chop_auto.spec o2);
  Alcotest.(check bool) "rendering reports the flips" true
    (contains (Ops.render_auto o.Chop_auto.spec o) "model flip(s)")

let test_hardware_only_runs_never_flip () =
  (* no processors declared: no flip candidates are generated and the
     rendering never mentions models — the pre-seam byte identity *)
  let o =
    Chop_auto.run ~seed:3 ~config:(private_config ())
      (bench_spec ~k:2 ~perf:6000. "diffeq")
  in
  Alcotest.(check int) "no flips" 0 o.Chop_auto.impl_flips;
  let text = Ops.render_auto o.Chop_auto.spec o in
  Alcotest.(check bool) "no flip clause in the rendering" false
    (contains text "model flip");
  Alcotest.(check bool) "no model tags in the rendering" false
    (contains text "[model ")

(* Byte-identity across job counts and across repeated runs: wave
   composition, the probe-score memo and the commit rule never consult the
   job count, so any jobs value must replay the same refinement.  The
   pools oversubscribe past the core clamp so the parallel path really
   runs multiple domains even on a small CI host. *)
let run_at_jobs ~jobs ~seed spec =
  let config =
    Chop.Explore.Config.make ~jobs
      ~cache:(Chop.Explore.Config.Custom (Chop.Pred_cache.create ()))
      ()
  in
  if jobs = 1 then Chop_auto.run ~seed ~max_moves:24 ~config spec
  else
    let pool = Chop_util.Pool.create ~oversubscribe:true ~jobs () in
    Fun.protect
      ~finally:(fun () -> Chop_util.Pool.shutdown pool)
      (fun () -> Chop_auto.run ~seed ~max_moves:24 ~pool ~config spec)

let auto_jobs_byte_identical =
  QCheck.Test.make ~name:"refine byte-identical across jobs 1/2/4 and reruns"
    ~count:6
    QCheck.(triple (12 -- 22) (0 -- 100) (2 -- 3))
    (fun (ops, seed, k) ->
      let render jobs =
        let o = run_at_jobs ~jobs ~seed (random_spec ~ops ~seed ~k) in
        Ops.render_auto o.Chop_auto.spec o
      in
      let reference = render 1 in
      (* jobs = 1 twice covers repeated-run identity *)
      List.for_all
        (fun jobs -> String.equal reference (render jobs))
        [ 1; 2; 4 ])

let test_auto_invalid_constraints () =
  let spec = bench_spec ~k:2 "ar" in
  let bad_pin =
    { Chop_auto.pins = [ (List.hd (first_ops spec.Chop.Spec.graph 1), "P9") ];
      communities = [] }
  in
  (match
     Chop_auto.run ~constraints:bad_pin ~config:(private_config ()) spec
   with
  | exception Chop_auto.Invalid_constraints _ -> ()
  | _ -> Alcotest.fail "unknown partition accepted");
  match
    Chop_auto.run
      ~constraints:{ Chop_auto.pins = [ (99999, "P1") ]; communities = [] }
      ~config:(private_config ()) spec
  with
  | exception Chop_auto.Invalid_constraints _ -> ()
  | _ -> Alcotest.fail "unknown operation accepted"

let test_parse_constraints () =
  let spec = bench_spec ~k:2 "ar" in
  (match Ops.parse_constraints spec ~pins:[ "1=P1" ] ~together:[] with
  | Ok { Chop_auto.pins = [ (1, "P1") ]; _ } -> ()
  | Ok _ -> Alcotest.fail "wrong parse"
  | Error m -> Alcotest.failf "pin rejected: %s" m);
  (match Ops.parse_constraints spec ~pins:[ "nope" ] ~together:[] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing '=' accepted");
  match Ops.parse_constraints spec ~pins:[] ~together:[ "1" ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "singleton community accepted"

(* ------------------------------------------------------------------ *)
(* Satellite regressions: scheduler failure paths *)

(* A pure chain at its minimal length: every operation has zero mobility,
   so every slack window is a single step — the case that used to die
   with [failwith "no schedulable op"]. *)
let test_force_directed_chain_minimal () =
  let b = G.builder ~name:"chain" () in
  let input = G.add_node b ~op:Chop_dfg.Op.Input ~width:16 in
  let prev = ref input in
  for _ = 1 to 10 do
    let c = G.add_node b ~op:Chop_dfg.Op.Const ~width:16 in
    let n = G.add_node b ~op:Chop_dfg.Op.Add ~width:16 in
    G.add_edge b ~src:!prev ~dst:n;
    G.add_edge b ~src:c ~dst:n;
    prev := n
  done;
  let out = G.add_node b ~op:Chop_dfg.Op.Output ~width:16 in
  G.add_edge b ~src:!prev ~dst:out;
  let g = G.build b in
  let cp = Chop_dfg.Analysis.critical_path g in
  let s = Chop_sched.Force_directed.run ~length:cp g in
  (match Chop_sched.Schedule.check s with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid schedule: %s" e);
  Alcotest.(check int) "minimal length achieved" cp s.Chop_sched.Schedule.length

let test_force_directed_ewf_minimal () =
  let g = Chop_dfg.Benchmarks.elliptic_wave_filter () in
  let cp = Chop_dfg.Analysis.critical_path g in
  let s = Chop_sched.Force_directed.run ~length:cp g in
  match Chop_sched.Schedule.check s with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid schedule: %s" e

let test_list_sched_no_progress_printer () =
  let msg =
    Printexc.to_string
      (Chop_sched.List_sched.No_progress
         { graph = "P1 of ewf"; ops = 7; bound = 99 })
  in
  Alcotest.(check bool) "printer names the exception" true
    (contains msg "No_progress");
  Alcotest.(check bool) "printer carries the graph label" true
    (contains msg "P1 of ewf")

let test_describe_exn_mapping () =
  let msg =
    Server.describe_exn
      (Chop_sched.List_sched.No_progress
         { graph = "P2 subgraph"; ops = 5; bound = 64 })
  in
  Alcotest.(check bool) "structured scheduler message" true
    (contains msg "scheduler stalled");
  Alcotest.(check bool) "carries the graph label" true
    (contains msg "P2 subgraph");
  Alcotest.(check bool) "other exceptions fall through" true
    (contains (Server.describe_exn (Failure "boom")) "boom")

let autopart_exactly_k =
  QCheck.Test.make
    ~name:"min-cut and random yield exactly k non-empty parts" ~count:30
    QCheck.(triple (10 -- 40) (0 -- 100) (2 -- 6))
    (fun (ops, seed, k) ->
      let g = Chop_dfg.Benchmarks.random_dag ~ops ~seed () in
      let k = min k (G.op_count g) in
      List.for_all
        (fun strategy ->
          let pg = Chop_baseline.Autopart.generate g ~k strategy in
          List.length pg.P.parts = k
          && List.for_all (fun (p : P.t) -> p.P.members <> []) pg.P.parts)
        [
          Chop_baseline.Autopart.Min_cut seed;
          Chop_baseline.Autopart.Random_balanced seed;
        ])

(* ------------------------------------------------------------------ *)
(* session/optimize through the server pipeline *)

let make_server () =
  Server.create
    {
      Server.default_config with
      socket_path = None;
      jobs = 1;
      log = None;
      handle_signals = false;
    }

let parse_response line =
  match Json.parse line with
  | Ok v -> v
  | Error msg -> Alcotest.failf "unparseable response %S: %s" line msg

let field resp path =
  List.fold_left (fun v name -> Option.bind v (Json.member name)) (Some resp)
    path

let open_session server line =
  let resp = parse_response (Server.handle_line server line) in
  match
    Option.bind (field resp [ "result"; "session" ]) Json.to_string_opt
  with
  | Some sid -> sid
  | None -> Alcotest.failf "no session id in %s" (Json.print resp)

let test_session_optimize_roundtrip () =
  let server = make_server () in
  let sid =
    open_session server
      {|{"op":"session/open","benchmark":"diffeq","partitions":2,"perf":6000,"strategy":"min-cut"}|}
  in
  let resp =
    parse_response
      (Server.handle_line server
         (Printf.sprintf
            {|{"op":"session/optimize","session":"%s","seed":1}|} sid))
  in
  Alcotest.(check (option bool)) "ok" (Some true) (Protocol.response_ok resp);
  Alcotest.(check (option bool)) "verdict flipped to feasible" (Some true)
    (Option.bind (field resp [ "result"; "feasible" ]) Json.to_bool_opt);
  let moves_tried =
    Option.bind (field resp [ "timing"; "moves_tried" ]) Json.to_int_opt
  in
  Alcotest.(check bool) "timing counts the candidate moves" true
    (match moves_tried with Some n -> n > 0 | None -> false);
  (* byte-identity with the CLI path: same spec, same seed, rendered
     through the same Ops.render_auto *)
  let o =
    Chop_auto.run ~seed:1 ~config:(private_config ())
      (bench_spec ~k:2 ~perf:6000. "diffeq")
  in
  Alcotest.(check (option string)) "text identical to chop auto"
    (Some (Ops.render_auto o.Chop_auto.spec o))
    (Protocol.response_text resp)

let test_session_optimize_bad_constraints () =
  let server = make_server () in
  let sid =
    open_session server
      {|{"op":"session/open","benchmark":"ar","partitions":2}|}
  in
  let code line =
    Protocol.response_error_code
      (parse_response (Server.handle_line server line))
  in
  Alcotest.(check (option string)) "unknown partition pin" (Some "bad_request")
    (code
       (Printf.sprintf
          {|{"op":"session/optimize","session":"%s","pins":["1=P9"]}|} sid));
  Alcotest.(check (option string)) "malformed pin" (Some "bad_request")
    (code
       (Printf.sprintf
          {|{"op":"session/optimize","session":"%s","pins":["zzz"]}|} sid));
  Alcotest.(check (option string)) "unknown session" (Some "bad_request")
    (code {|{"op":"session/optimize","session":"nope"}|})

let () =
  Alcotest.run "chop_auto"
    [
      ( "auto",
        [
          QCheck_alcotest.to_alcotest auto_yields_valid_partitioning;
          Alcotest.test_case "deterministic per seed" `Quick
            test_auto_deterministic;
          Alcotest.test_case "honors pins" `Quick test_auto_honors_pins;
          Alcotest.test_case "honors communities" `Quick
            test_auto_honors_communities;
          Alcotest.test_case "invalid constraints" `Quick
            test_auto_invalid_constraints;
          Alcotest.test_case "parse_constraints" `Quick test_parse_constraints;
          Alcotest.test_case "multilevel coarsening depth" `Quick
            test_auto_multilevel_depth;
          QCheck_alcotest.to_alcotest auto_jobs_byte_identical;
        ] );
      ( "models",
        [
          Alcotest.test_case "pcm_pwm co-design triangle" `Quick
            test_pcm_pwm_codesign_triangle;
          Alcotest.test_case "hardware-only runs never flip" `Quick
            test_hardware_only_runs_never_flip;
        ] );
      ( "sched-hardening",
        [
          Alcotest.test_case "force-directed chain at minimal length" `Quick
            test_force_directed_chain_minimal;
          Alcotest.test_case "force-directed ewf at minimal length" `Quick
            test_force_directed_ewf_minimal;
          Alcotest.test_case "No_progress printer" `Quick
            test_list_sched_no_progress_printer;
          Alcotest.test_case "describe_exn mapping" `Quick
            test_describe_exn_mapping;
          QCheck_alcotest.to_alcotest autopart_exactly_k;
        ] );
      ( "session-optimize",
        [
          Alcotest.test_case "round-trip" `Quick
            test_session_optimize_roundtrip;
          Alcotest.test_case "bad constraints" `Quick
            test_session_optimize_bad_constraints;
        ] );
    ]
