(* Tests for interactive sessions: the Spec edit language (validity,
   precise rejection, partitioning invariants under random edit
   sequences) and the incremental re-prediction contract — a session's
   run after edits is byte-identical to a cold exploration of the edited
   spec, and misses the prediction cache only for the partitions the
   edits dirtied. *)

open Chop
module Ops = Chop_server.Ops

let ar_spec ?(k = 3) () = Rig.experiment1 ~partitions:k ()

let ewf_spec ?(k = 3) () =
  let graph = Chop_dfg.Benchmarks.elliptic_wave_filter () in
  Rig.custom ~graph
    ~partitioning:(Chop_dfg.Partition.by_levels graph ~k)
    ~package:Chop_tech.Mosis.package_84
    ~clocks:
      (Chop_tech.Clocking.make ~main:300. ~datapath_ratio:1 ~transfer_ratio:1)
    ~style:(Chop_tech.Style.both Chop_tech.Style.Multi_cycle)
    ~criteria:(Chop_bad.Feasibility.criteria ~perf:20000. ~delay:20000. ())
    ()

let parts spec = spec.Spec.partitioning.Chop_dfg.Partition.parts
let labels spec = List.map (fun p -> p.Chop_dfg.Partition.label) (parts spec)

let all_members spec =
  List.concat_map (fun p -> p.Chop_dfg.Partition.members) (parts spec)
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Spec.update: validity and precise rejection *)

let update_ok spec edits =
  match Spec.update spec edits with
  | Ok r -> r
  | Error e -> Alcotest.failf "%a" Spec.pp_update_error e

let check_rejected ~at spec edits =
  match Spec.update spec edits with
  | Ok _ -> Alcotest.fail "edit list unexpectedly accepted"
  | Error e ->
      Alcotest.(check int) "rejected index" at e.Spec.index;
      Alcotest.(check bool) "reason non-empty" true
        (String.length e.Spec.reason > 0)

let test_merge_dirties_only_dst () =
  let spec = ewf_spec () in
  let _, dirty = update_ok spec [ Spec.Merge_parts { src = "P3"; dst = "P2" } ] in
  Alcotest.(check (list string)) "repredict" [ "P2" ] dirty.Spec.repredict;
  Alcotest.(check (list string)) "removed" [ "P3" ] dirty.Spec.removed;
  Alcotest.(check (list string)) "rederive" [] dirty.Spec.rederive

let test_move_dirties_both_ends () =
  let spec = ewf_spec () in
  (* P2's first (shallowest) member: its producers sit in P1, so pulling
     it down into P1 keeps the quotient graph acyclic *)
  let op =
    List.hd
      (Chop_dfg.Partition.find spec.Spec.partitioning "P2")
        .Chop_dfg.Partition.members
  in
  let _, dirty = update_ok spec [ Spec.Move_op { op; to_partition = "P1" } ] in
  Alcotest.(check (list string)) "repredict" [ "P1"; "P2" ]
    (List.sort compare dirty.Spec.repredict)

let test_criteria_rederives_all () =
  let spec = ewf_spec () in
  let _, dirty =
    update_ok spec
      [ Spec.Set_criteria (Chop_bad.Feasibility.criteria ~perf:1000. ~delay:1000. ()) ]
  in
  Alcotest.(check (list string)) "rederive" (labels spec)
    (List.sort compare dirty.Spec.rederive);
  Alcotest.(check (list string)) "repredict" [] dirty.Spec.repredict

let test_rejections_are_precise () =
  let spec = ewf_spec () in
  let good = Spec.Merge_parts { src = "P3"; dst = "P2" } in
  (* unknown operands, each rejected at its own position *)
  check_rejected ~at:0 spec [ Spec.Move_op { op = -1; to_partition = "P1" } ];
  check_rejected ~at:0 spec [ Spec.Merge_parts { src = "P9"; dst = "P1" } ];
  check_rejected ~at:0 spec [ Spec.Merge_parts { src = "P1"; dst = "P1" } ];
  check_rejected ~at:1 spec
    [ good; Spec.Reassign_chip { partition = "P1"; chip = "nochip" } ];
  check_rejected ~at:1 spec
    [ good; Spec.Rehost_memory { block = "noblock"; chip = "chip1" } ];
  (* the merge removed P3: referring to it afterwards is the error *)
  check_rejected ~at:1 spec
    [ good; Spec.Reassign_chip { partition = "P3"; chip = "chip1" } ];
  (* rejection leaves the input spec untouched and usable *)
  let spec', _ = update_ok spec [ good ] in
  Alcotest.(check (list string)) "input spec unchanged" [ "P1"; "P2"; "P3" ]
    (labels spec);
  Alcotest.(check (list string)) "merge applied to copy" [ "P1"; "P2" ]
    (labels spec')

let test_emptying_move_rejected () =
  let spec = ewf_spec () in
  (* merge everything into P1, then try to move a lone member out of a
     singleton partition produced by a split *)
  let p1_members = (Chop_dfg.Partition.find spec.Spec.partitioning "P1").Chop_dfg.Partition.members in
  let lone = List.hd p1_members in
  let spec', _ =
    update_ok spec
      [ Spec.Split_part { from_partition = "P1"; members = [ lone ]; new_label = "S" } ]
  in
  check_rejected ~at:0 spec' [ Spec.Move_op { op = lone; to_partition = "P2" } ]

(* ------------------------------------------------------------------ *)
(* Random edit sequences: invariants hold, rejection never raises *)

(* a tiny deterministic LCG so the derived edits depend only on the seed *)
let lcg seed = ref (seed land 0x3FFFFFFF)

let rand r n =
  r := ((!r * 1103515245) + 12345) land 0x3FFFFFFF;
  if n <= 0 then 0 else !r mod n

let pick r l = List.nth l (rand r (List.length l))

(* a random edit against the current spec: mostly well-formed, with a
   slice of deliberately invalid ones to exercise rejection mid-list *)
let gen_edit r spec =
  let ls = labels spec in
  let chips = List.map (fun c -> c.Spec.chip_name) spec.Spec.chips in
  match rand r 8 with
  | 0 ->
      let p = pick r (parts spec) in
      Spec.Move_op
        { op = pick r p.Chop_dfg.Partition.members; to_partition = pick r ls }
  | 1 -> Spec.Merge_parts { src = pick r ls; dst = pick r ls }
  | 2 ->
      let p = pick r (parts spec) in
      let n = List.length p.Chop_dfg.Partition.members in
      let members =
        List.filteri (fun i _ -> i < max 1 (n / 2)) p.Chop_dfg.Partition.members
      in
      Spec.Split_part
        { from_partition = p.Chop_dfg.Partition.label;
          members;
          new_label = Printf.sprintf "S%d" (rand r 1000) }
  | 3 -> Spec.Reassign_chip { partition = pick r ls; chip = pick r chips }
  | 4 ->
      Spec.Swap_package
        { chip = pick r chips;
          package =
            (if rand r 2 = 0 then Chop_tech.Mosis.package_64
             else Chop_tech.Mosis.package_84) }
  | 5 ->
      Spec.Set_criteria
        (Chop_bad.Feasibility.criteria
           ~perf:(float_of_int (10000 + rand r 30000))
           ~delay:(float_of_int (10000 + rand r 30000))
           ())
  | 6 ->
      Spec.Set_clocks
        (Chop_tech.Clocking.make ~main:300.
           ~datapath_ratio:(1 + rand r 9)
           ~transfer_ratio:1)
  | _ -> (
      (* deliberately invalid *)
      match rand r 3 with
      | 0 -> Spec.Move_op { op = 99999; to_partition = pick r ls }
      | 1 -> Spec.Merge_parts { src = "PX"; dst = pick r ls }
      | _ -> Spec.Reassign_chip { partition = pick r ls; chip = "nochip" })

let check_partitioning_invariants ~before spec =
  let pg = spec.Spec.partitioning in
  (* coverage: the edited partitioning owns exactly the nodes the original
     did, each exactly once (disjointness falls out of the equality) *)
  Alcotest.(check (list int)) "node coverage preserved" before (all_members spec);
  (* every partition non-empty, labels unique, assignment total *)
  List.iter
    (fun p ->
      Alcotest.(check bool) "partition non-empty" true
        (p.Chop_dfg.Partition.members <> []))
    pg.Chop_dfg.Partition.parts;
  let ls = labels spec in
  Alcotest.(check int) "labels unique" (List.length ls)
    (List.length (List.sort_uniq compare ls));
  List.iter
    (fun l ->
      Alcotest.(check bool) "partition assigned" true
        (List.mem_assoc l spec.Spec.assignment))
    ls

let random_edits_keep_invariants =
  QCheck.Test.make ~name:"random edit sequences preserve spec invariants"
    ~count:60
    QCheck.(pair (0 -- 10000) (1 -- 6))
    (fun (seed, len) ->
      let r = lcg seed in
      let spec0 = if seed mod 2 = 0 then ewf_spec () else ar_spec () in
      let before = all_members spec0 in
      let spec = ref spec0 in
      for _ = 1 to len do
        let edit = gen_edit r !spec in
        match Spec.update !spec [ edit ] with
        | Ok (spec', dirty) ->
            check_partitioning_invariants ~before spec';
            let live = labels spec' in
            List.iter
              (fun l ->
                Alcotest.(check bool) "repredict live" true (List.mem l live))
              dirty.Spec.repredict;
            List.iter
              (fun l ->
                Alcotest.(check bool) "rederive live and not repredicted" true
                  (List.mem l live && not (List.mem l dirty.Spec.repredict)))
              dirty.Spec.rederive;
            List.iter
              (fun l ->
                Alcotest.(check bool) "removed not live" true
                  (not (List.mem l live)))
              dirty.Spec.removed;
            spec := spec'
        | Error e ->
            (* precise, structured rejection: never an exception, the spec
               unchanged *)
            Alcotest.(check int) "error index" 0 e.Spec.index;
            Alcotest.(check bool) "reason non-empty" true
              (String.length e.Spec.reason > 0)
      done;
      true)

(* ------------------------------------------------------------------ *)
(* Incremental soundness: a session run after edits equals a cold run *)

let render spec report =
  Ops.render_explore spec ~keep_all:false ~csv:false ~verbose:false report

let cold_run ~heuristic spec =
  Explore.with_engine
    (Explore.Config.make ~heuristic ~cache:Explore.Config.Off ())
    spec Explore.Engine.run

let session_matches_cold ~heuristic spec edits () =
  let config =
    Explore.Config.make ~heuristic
      ~cache:(Explore.Config.Custom (Pred_cache.create ()))
      ()
  in
  Explore.with_session config spec (fun session ->
      let _cold_report = Explore.Session.run session in
      (match Explore.Session.edit session edits with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "%a" Spec.pp_update_error e);
      let warm = Explore.Session.run session in
      let spec' = Explore.Session.spec session in
      let cold = cold_run ~heuristic spec' in
      Alcotest.(check string) "session run == cold run on edited spec"
        (render spec' cold) (render spec' warm))

let fixed_edits spec =
  (* merge the tail partition away, pull a boundary op down a partition
     (acyclic by construction: its producers live below it), retune *)
  let op =
    List.hd
      (Chop_dfg.Partition.find spec.Spec.partitioning "P2")
        .Chop_dfg.Partition.members
  in
  [
    Spec.Merge_parts { src = "P3"; dst = "P2" };
    Spec.Move_op { op; to_partition = "P1" };
    Spec.Set_criteria (Chop_bad.Feasibility.criteria ~perf:25000. ~delay:25000. ());
  ]

let random_session_matches_cold =
  QCheck.Test.make
    ~name:"session runs match cold exploration across random edits" ~count:8
    QCheck.(pair (0 -- 10000) (1 -- 4))
    (fun (seed, len) ->
      let r = lcg seed in
      let spec0 = if seed mod 2 = 0 then ewf_spec () else ar_spec () in
      let config =
        Explore.Config.make
          ~cache:(Explore.Config.Custom (Pred_cache.create ()))
          ()
      in
      Explore.with_session config spec0 (fun session ->
          ignore (Explore.Session.run session);
          for _ = 1 to len do
            let edit = gen_edit r (Explore.Session.spec session) in
            ignore (Explore.Session.edit session [ edit ])
          done;
          let warm = Explore.Session.run session in
          let spec' = Explore.Session.spec session in
          let cold = cold_run ~heuristic:Explore.Iterative spec' in
          String.equal (render spec' cold) (render spec' warm)))

(* ------------------------------------------------------------------ *)
(* Scoped re-prediction: misses == dirty partitions *)

let test_misses_equal_dirty () =
  let spec = ewf_spec () in
  let config =
    Explore.Config.make
      ~cache:(Explore.Config.Custom (Pred_cache.create ()))
      ()
  in
  Explore.with_session config spec (fun session ->
      let cold = Explore.Session.run session in
      Alcotest.(check int) "cold accounts for every partition" 3
        (cold.Explore.cache_hits + cold.Explore.cache_misses);
      let dirty =
        match
          Explore.Session.edit session
            [ Spec.Merge_parts { src = "P3"; dst = "P2" } ]
        with
        | Ok d -> d
        | Error e -> Alcotest.failf "%a" Spec.pp_update_error e
      in
      Alcotest.(check (list string)) "single dirty partition" [ "P2" ]
        dirty.Spec.repredict;
      let warm = Explore.Session.run session in
      Alcotest.(check int) "misses == dirty partitions"
        (List.length dirty.Spec.repredict)
        warm.Explore.cache_misses;
      Alcotest.(check int) "clean partitions hit" 1 warm.Explore.cache_hits;
      (* a third run with no edits is all hits *)
      let idle = Explore.Session.run session in
      Alcotest.(check int) "idle re-run misses nothing" 0
        idle.Explore.cache_misses)

let test_session_revision_and_pending () =
  let spec = ewf_spec () in
  Explore.with_session Explore.Config.default spec (fun session ->
      Alcotest.(check int) "fresh revision" 0 (Explore.Session.revision session);
      Alcotest.(check (list string)) "everything pending initially"
        [ "P1"; "P2"; "P3" ]
        (List.sort compare (Explore.Session.pending_dirty session));
      ignore (Explore.Session.run session);
      Alcotest.(check (list string)) "run clears pending" []
        (Explore.Session.pending_dirty session);
      (match
         Explore.Session.edit session
           [ Spec.Merge_parts { src = "P3"; dst = "P2" } ]
       with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "%a" Spec.pp_update_error e);
      Alcotest.(check int) "edit bumps revision" 1
        (Explore.Session.revision session);
      Alcotest.(check (list string)) "edit queues dirty" [ "P2" ]
        (Explore.Session.pending_dirty session))

(* ------------------------------------------------------------------ *)
(* Undo/redo: inverse laws on the report bytes, bounded history *)

let retune perf =
  Spec.Set_criteria (Chop_bad.Feasibility.criteria ~perf ~delay:perf ())

let test_history_bounded () =
  let session =
    Explore.Session.create ~history:2 Explore.Config.default (ar_spec ())
  in
  Fun.protect
    ~finally:(fun () -> Explore.Session.close session)
    (fun () ->
      List.iter
        (fun perf ->
          match Explore.Session.edit session [ retune perf ] with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "%a" Spec.pp_update_error e)
        [ 21000.; 22000.; 23000. ];
      (* three edits, but the stack holds only the last two pre-edit specs *)
      Alcotest.(check int) "undo depth capped" 2
        (Explore.Session.undo_depth session);
      (match Explore.Session.undo session with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e);
      Alcotest.(check int) "undo fills redo" 1
        (Explore.Session.redo_depth session);
      (match Explore.Session.undo session with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e);
      (* the first edit's pre-state fell off the bounded stack *)
      (match Explore.Session.undo session with
      | Ok _ -> Alcotest.fail "undo past the history bound"
      | Error _ -> ());
      (* a fresh edit clears the redo stack *)
      (match Explore.Session.edit session [ retune 25000. ] with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "%a" Spec.pp_update_error e);
      Alcotest.(check int) "edit clears redo" 0
        (Explore.Session.redo_depth session))

let test_undo_disabled () =
  let session =
    Explore.Session.create ~history:0 Explore.Config.default (ar_spec ())
  in
  Fun.protect
    ~finally:(fun () -> Explore.Session.close session)
    (fun () ->
      (match Explore.Session.edit session [ retune 21000. ] with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "%a" Spec.pp_update_error e);
      Alcotest.(check int) "no history kept" 0
        (Explore.Session.undo_depth session);
      match Explore.Session.undo session with
      | Ok _ -> Alcotest.fail "undo with history disabled"
      | Error _ -> ())

(* undo∘edit = id and redo∘undo = edit, measured on the bytes a client
   sees: the rendered report of a run after the step *)
let undo_redo_inverse_laws =
  QCheck.Test.make ~name:"undo reverts the report bytes, redo replays them"
    ~count:6
    QCheck.(0 -- 10000)
    (fun seed ->
      let r = lcg seed in
      let spec0 = if seed mod 2 = 0 then ewf_spec () else ar_spec () in
      let config =
        Explore.Config.make
          ~cache:(Explore.Config.Custom (Pred_cache.create ()))
          ()
      in
      Explore.with_session config spec0 (fun session ->
          let run () =
            let spec = Explore.Session.spec session in
            render spec (Explore.Session.run session)
          in
          let before = run () in
          (* find a random edit the spec accepts (gen_edit deliberately
             mixes in invalid ones); none in 30 draws ⇒ trivially pass *)
          let rec try_edit n =
            if n = 0 then None
            else
              let edit = gen_edit r (Explore.Session.spec session) in
              match Explore.Session.edit session [ edit ] with
              | Ok _ -> Some edit
              | Error _ -> try_edit (n - 1)
          in
          match try_edit 30 with
          | None -> true
          | Some _ ->
              let rev_after_edit = Explore.Session.revision session in
              let after = run () in
              (match Explore.Session.undo session with
              | Ok _ -> ()
              | Error e -> Alcotest.fail e);
              Alcotest.(check string) "undo∘edit = id on the report" before
                (run ());
              Alcotest.(check int) "undo advances the revision"
                (rev_after_edit + 1)
                (Explore.Session.revision session);
              (match Explore.Session.redo session with
              | Ok _ -> ()
              | Error e -> Alcotest.fail e);
              Alcotest.(check string) "redo replays the edit's report" after
                (run ());
              true))

(* ------------------------------------------------------------------ *)
(* Snapshot round-trip: a restored session is the session, byte for
   byte, and its first run does no raw prediction work *)

let snapshot_roundtrip_preserves_session =
  QCheck.Test.make
    ~name:"snapshot round-trip: byte-identical run, zero cache misses"
    ~count:6
    QCheck.(pair (0 -- 10000) (1 -- 3))
    (fun (seed, len) ->
      let r = lcg seed in
      let spec0 = if seed mod 2 = 0 then ewf_spec () else ar_spec () in
      (* one shared content-addressed cache, as the serving layer's
         process-wide store would be *)
      let cache = Pred_cache.create () in
      let config =
        Explore.Config.make ~cache:(Explore.Config.Custom cache) ()
      in
      let meta = [ ("open", "{\"op\":\"session/open\"}") ] in
      let session = Explore.Session.create config spec0 in
      let reference, snap =
        Fun.protect
          ~finally:(fun () -> Explore.Session.close session)
          (fun () ->
            ignore (Explore.Session.run session);
            for _ = 1 to len do
              ignore
                (Explore.Session.edit session
                   [ gen_edit r (Explore.Session.spec session) ])
            done;
            let spec = Explore.Session.spec session in
            let reference = render spec (Explore.Session.run session) in
            ( reference,
              Snapshot.of_state ~meta (Explore.Session.state session) ))
      in
      (* through the wire format and back *)
      let parsed = Snapshot.parse (Snapshot.print snap) in
      Alcotest.(check (list (pair string string))) "meta preserved" meta
        parsed.Snapshot.meta;
      Alcotest.(check int) "revision preserved" snap.Snapshot.revision
        parsed.Snapshot.revision;
      Alcotest.(check int) "undo chain preserved"
        (List.length snap.Snapshot.undo)
        (List.length parsed.Snapshot.undo);
      Alcotest.(check int) "redo chain preserved"
        (List.length snap.Snapshot.redo)
        (List.length parsed.Snapshot.redo);
      let restored =
        Explore.Session.restore config (Snapshot.to_state parsed)
      in
      Fun.protect
        ~finally:(fun () -> Explore.Session.close restored)
        (fun () ->
          let report = Explore.Session.run restored in
          (* parsing renumbered every node id, so raw cache keys differ —
             the content-addressed store must serve every partition
             anyway, as structural hits: no prediction is recomputed *)
          Alcotest.(check int) "restored run misses nothing" 0
            report.Explore.cache_misses;
          Alcotest.(check string)
            "restored run byte-identical to the live session's" reference
            (render (Explore.Session.spec restored) report);
          true))

(* ------------------------------------------------------------------ *)
(* Implementation models: the edit-language seam, per-model cache
   identity and snapshot forward-compatibility *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let cpu_big =
  Chop_model_sw.Processor.make ~name:"cpu" ~issue_slots:2 ~cycle_ns:300.
    ~code_bytes_per_op:4 ~data_bytes_per_value:2 ~memory_budget_bytes:65536.
    ~bus_bits:16

let hwsw_spec ?(impls = []) graph =
  Rig.custom ~graph
    ~partitioning:(Chop_dfg.Partition.by_levels graph ~k:3)
    ~package:Chop_tech.Mosis.package_84
    ~clocks:
      (Chop_tech.Clocking.make ~main:300. ~datapath_ratio:1 ~transfer_ratio:1)
    ~style:(Chop_tech.Style.both Chop_tech.Style.Multi_cycle)
    ~criteria:(Chop_bad.Feasibility.criteria ~perf:20000. ~delay:20000. ())
    ~processors:[ cpu_big ] ~impls ()

let test_parse_edit_impl () =
  let spec = hwsw_spec (Chop_dfg.Benchmarks.elliptic_wave_filter ()) in
  (match Ops.parse_edit spec "impl P2 cpu" with
  | Ok (Spec.Set_impl { partition = "P2"; impl = "cpu" }) -> ()
  | Ok _ -> Alcotest.fail "wrong edit"
  | Error e -> Alcotest.fail e);
  (match Ops.parse_edit spec "impl P2 hw" with
  | Ok (Spec.Set_impl { partition = "P2"; impl = "hw" }) -> ()
  | _ -> Alcotest.fail "hw rebinding rejected");
  (match Ops.parse_edit spec "impl P2 dsp" with
  | Ok _ -> Alcotest.fail "unknown model accepted"
  | Error msg ->
      Alcotest.(check bool) "names the model" true (contains msg "\"dsp\"");
      Alcotest.(check bool) "lists the declared vocabulary" true
        (contains msg "hw, cpu"));
  (* on a hardware-only spec the vocabulary is just "hw" *)
  match Ops.parse_edit (ewf_spec ()) "impl P1 cpu" with
  | Ok _ -> Alcotest.fail "processor accepted without a declaration"
  | Error msg ->
      Alcotest.(check bool) "hw-only vocabulary" true (contains msg "hw")

let test_model_flip_keeps_models_cache_disjoint () =
  let cache = Pred_cache.create () in
  let config =
    Explore.Config.make ~jobs:1 ~cache:(Explore.Config.Custom cache) ()
  in
  let session =
    Explore.Session.create config
      (hwsw_spec (Chop_dfg.Benchmarks.elliptic_wave_filter ()))
  in
  Fun.protect
    ~finally:(fun () -> Explore.Session.close session)
    (fun () ->
      let cold = Explore.Session.run session in
      Alcotest.(check int) "cold run misses every partition" 3
        cold.Explore.cache_misses;
      (match
         Explore.Session.edit session
           [ Spec.Set_impl { partition = "P2"; impl = "cpu" } ]
       with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "%a" Spec.pp_update_error e);
      let sw = Explore.Session.run session in
      Alcotest.(check int)
        "flip repredicts only the flipped partition (hw entries cannot \
         serve software)" 1 sw.Explore.cache_misses;
      Alcotest.(check int) "hardware partitions still hit" 2
        sw.Explore.cache_hits;
      (match
         Explore.Session.edit session
           [ Spec.Set_impl { partition = "P2"; impl = "hw" } ]
       with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "%a" Spec.pp_update_error e);
      let back = Explore.Session.run session in
      Alcotest.(check int)
        "flipping back misses nothing: both models' entries coexist" 0
        back.Explore.cache_misses;
      Alcotest.(check int) "every partition hits" 3 back.Explore.cache_hits)

let test_structural_hits_within_each_model () =
  let cache = Pred_cache.create () in
  let config =
    Explore.Config.make ~jobs:1 ~cache:(Explore.Config.Custom cache) ()
  in
  let g = Chop_dfg.Benchmarks.elliptic_wave_filter () in
  let g' = Chop_dfg.Transform.renumber g in
  let all_cpu = [ ("P1", "cpu"); ("P2", "cpu"); ("P3", "cpu") ] in
  let run spec =
    let session = Explore.Session.create config spec in
    Fun.protect
      ~finally:(fun () -> Explore.Session.close session)
      (fun () -> Explore.Session.run session)
  in
  ignore (run (hwsw_spec g));
  (* same construction, software bindings: disjoint key space, so every
     partition misses — zero cross-model collisions *)
  let sw_cold = run (hwsw_spec ~impls:all_cpu g) in
  Alcotest.(check int) "software never hits hardware entries" 0
    sw_cold.Explore.cache_hits;
  Alcotest.(check int) "software cold run misses every partition" 3
    sw_cold.Explore.cache_misses;
  (* renumbered constructions: content addressing serves both models *)
  let hw_renum = run (hwsw_spec g') in
  Alcotest.(check int) "hw re-run misses nothing" 0
    hw_renum.Explore.cache_misses;
  Alcotest.(check bool) "hw hits are structural" true
    (hw_renum.Explore.metrics.Explore.Metrics.cache_structural_hits > 0);
  let sw_renum = run (hwsw_spec ~impls:all_cpu g') in
  Alcotest.(check int) "sw re-run misses nothing" 0
    sw_renum.Explore.cache_misses;
  Alcotest.(check bool) "sw hits are structural" true
    (sw_renum.Explore.metrics.Explore.Metrics.cache_structural_hits > 0)

let test_snapshot_forward_compat () =
  let session =
    Explore.Session.create Explore.Config.default (ar_spec ~k:2 ())
  in
  let snap =
    Fun.protect
      ~finally:(fun () -> Explore.Session.close session)
      (fun () ->
        ignore (Explore.Session.run session);
        Snapshot.of_state
          ~meta:[ ("open", "{\"benchmark\":\"ar\"}") ]
          (Explore.Session.state session))
  in
  let future_lines =
    [ "modelstore digest=0abc shards=2"; "weights <<<"; "w1 0.5"; ">>>" ]
  in
  let text = Snapshot.print snap in
  (* a newer writer: extra statements after the header, and a
     per-partition field on a partition line inside the spec block *)
  let text =
    match String.index_opt text '\n' with
    | Some i ->
        String.sub text 0 (i + 1)
        ^ String.concat "\n" future_lines
        ^ "\n"
        ^ String.sub text (i + 1) (String.length text - i - 1)
    | None -> Alcotest.fail "empty snapshot"
  in
  let text =
    let old_s = "partition P2 = " in
    let n = String.length text and no = String.length old_s in
    let rec find i =
      if i + no > n then Alcotest.fail "no partition line to decorate"
      else if String.sub text i no = old_s then i
      else find (i + 1)
    in
    let i = find 0 in
    String.sub text 0 (i + no) ^ "impl=cpu " ^ String.sub text (i + no) (n - i - no)
  in
  let parsed = Snapshot.parse text in
  Alcotest.(check (list string)) "unknown statements captured in order"
    future_lines parsed.Snapshot.unknown;
  Alcotest.(check (list (pair string string))) "meta still parses"
    [ ("open", "{\"benchmark\":\"ar\"}") ]
    parsed.Snapshot.meta;
  (* print/parse round-trip keeps the foreign lines verbatim *)
  let reparsed = Snapshot.parse (Snapshot.print parsed) in
  Alcotest.(check (list string)) "unknown lines survive a round-trip"
    future_lines reparsed.Snapshot.unknown;
  (* restoring drops only what this binary has no slot for: the session
     itself is intact, including the partition that carried the field *)
  let restored =
    Explore.Session.restore Explore.Config.default (Snapshot.to_state reparsed)
  in
  Fun.protect
    ~finally:(fun () -> Explore.Session.close restored)
    (fun () ->
      let spec = Explore.Session.spec restored in
      Alcotest.(check (list string)) "partitions intact" [ "P1"; "P2" ]
        (List.sort compare (labels spec));
      ignore (Explore.Session.run restored))

(* ------------------------------------------------------------------ *)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "chop_session"
    [
      ( "update",
        [
          tc "merge dirties only dst" `Quick test_merge_dirties_only_dst;
          tc "move dirties both ends" `Quick test_move_dirties_both_ends;
          tc "criteria rederives all" `Quick test_criteria_rederives_all;
          tc "rejections are precise" `Quick test_rejections_are_precise;
          tc "emptying move rejected" `Quick test_emptying_move_rejected;
          QCheck_alcotest.to_alcotest random_edits_keep_invariants;
        ] );
      ( "soundness",
        [
          tc "ewf enumeration" `Quick
            (session_matches_cold ~heuristic:Explore.Enumeration
               (ewf_spec ())
               (fixed_edits (ewf_spec ())));
          tc "ewf iterative" `Quick
            (session_matches_cold ~heuristic:Explore.Iterative (ewf_spec ())
               (fixed_edits (ewf_spec ())));
          tc "ewf branch-bound" `Quick
            (session_matches_cold ~heuristic:Explore.Branch_bound
               (ewf_spec ())
               (fixed_edits (ewf_spec ())));
          tc "ar iterative" `Quick
            (session_matches_cold ~heuristic:Explore.Iterative (ar_spec ())
               (fixed_edits (ar_spec ())));
          QCheck_alcotest.to_alcotest random_session_matches_cold;
        ] );
      ( "incremental",
        [
          tc "misses equal dirty partitions" `Quick test_misses_equal_dirty;
          tc "revision and pending" `Quick test_session_revision_and_pending;
        ] );
      ( "history",
        [
          tc "undo stack is bounded" `Quick test_history_bounded;
          tc "history 0 disables undo" `Quick test_undo_disabled;
          QCheck_alcotest.to_alcotest undo_redo_inverse_laws;
        ] );
      ( "durability",
        [
          QCheck_alcotest.to_alcotest snapshot_roundtrip_preserves_session;
          tc "snapshot forward compatibility" `Quick
            test_snapshot_forward_compat;
        ] );
      ( "models",
        [
          tc "parse_edit impl" `Quick test_parse_edit_impl;
          tc "flip keeps models' cache entries disjoint" `Quick
            test_model_flip_keeps_models_cache_disjoint;
          tc "structural hits within each model" `Quick
            test_structural_hits_within_each_model;
        ] );
    ]
