(* Tests for chop_baseline: Kernighan-Lin bipartitioning and automatic
   partition generation. *)

open Chop_baseline

(* one-shot helper over a fresh session (the deprecated wrapper is gone) *)
let explore_run heuristic spec =
  Chop.Explore.with_engine
    (Chop.Explore.Config.make ~heuristic ())
    spec Chop.Explore.Engine.run


let ar () = Chop_dfg.Benchmarks.ar_lattice_filter ()

let test_cut_bits_manual () =
  let g = ar () in
  let pg = Chop_dfg.Partition.by_levels g ~k:2 in
  let p1 = Chop_dfg.Partition.find pg "P1" in
  let in_a id = List.mem id p1.Chop_dfg.Partition.members in
  let cut = Kl.cut_bits g ~in_a in
  Alcotest.(check bool) "positive cut" true (cut > 0);
  (* values are 16 bit: the cut is a multiple of 16 *)
  Alcotest.(check int) "16-bit aligned" 0 (cut mod 16)

let test_bipartition_balanced () =
  let r = Kl.bipartition ~seed:1 (ar ()) in
  let na = List.length r.Kl.side_a and nb = List.length r.Kl.side_b in
  Alcotest.(check int) "covers all" 28 (na + nb);
  Alcotest.(check bool) "balanced" true (abs (na - nb) <= 2);
  Alcotest.(check bool) "ran at least one pass" true (r.Kl.passes >= 1)

let test_bipartition_improves_on_random () =
  let g = ar () in
  (* KL's result should not be worse than a naive topological halving *)
  let naive =
    let ops = List.map (fun n -> n.Chop_dfg.Graph.id) (Chop_dfg.Graph.operations g) in
    let half = List.length ops / 2 in
    let a = Chop_util.Listx.take half ops in
    Kl.cut_bits g ~in_a:(fun id -> List.mem id a)
  in
  let r = Kl.bipartition ~seed:3 g in
  Alcotest.(check bool) "kl <= naive" true (r.Kl.cut_bits <= naive)

let test_bipartition_tiny_graph () =
  let b = Chop_dfg.Graph.builder () in
  let i = Chop_dfg.Graph.add_node b ~op:Chop_dfg.Op.Input ~width:8 in
  let x = Chop_dfg.Graph.add_node b ~op:Chop_dfg.Op.Shift ~width:8 in
  Chop_dfg.Graph.add_edge b ~src:i ~dst:x;
  let g = Chop_dfg.Graph.build b in
  let r = Kl.bipartition ~seed:0 g in
  Alcotest.(check int) "single op stays" 1
    (List.length r.Kl.side_a + List.length r.Kl.side_b)

let test_legalize_makes_quotient_acyclic () =
  let g = ar () in
  let r = Kl.bipartition ~seed:5 g in
  let a, b = Kl.legalize g r.Kl.side_a r.Kl.side_b in
  (* no edge may run from B back to A *)
  List.iter
    (fun (src, dst) ->
      if List.mem src b && List.mem dst a then Alcotest.fail "back edge survived")
    (Chop_dfg.Graph.edges g);
  Alcotest.(check int) "coverage preserved" 28 (List.length a + List.length b)

let test_legalize_builds_valid_partitioning () =
  let g = ar () in
  let r = Kl.bipartition ~seed:7 g in
  let a, b = Kl.legalize g r.Kl.side_a r.Kl.side_b in
  if a <> [] && b <> [] then begin
    let pg =
      Chop_dfg.Partition.partitioning g
        [ Chop_dfg.Partition.make ~label:"A" a; Chop_dfg.Partition.make ~label:"B" b ]
    in
    Alcotest.(check int) "two parts" 2 (List.length pg.Chop_dfg.Partition.parts)
  end

let kl_deterministic =
  QCheck.Test.make ~name:"kl is deterministic per seed" ~count:20
    QCheck.(pair (10 -- 40) (0 -- 100))
    (fun (ops, seed) ->
      let g = Chop_dfg.Benchmarks.random_dag ~ops ~seed:(ops + seed) () in
      let a = Kl.bipartition ~seed g and b = Kl.bipartition ~seed g in
      a.Kl.cut_bits = b.Kl.cut_bits && a.Kl.side_a = b.Kl.side_a)

let legalize_preserves_nodes =
  QCheck.Test.make ~name:"legalize preserves node sets" ~count:30
    QCheck.(pair (10 -- 40) (0 -- 100))
    (fun (ops, seed) ->
      let g = Chop_dfg.Benchmarks.random_dag ~ops ~seed:(ops * 7 + seed) () in
      let r = Kl.bipartition ~seed g in
      let a, b = Kl.legalize g r.Kl.side_a r.Kl.side_b in
      List.sort Int.compare (a @ b)
      = List.sort Int.compare (r.Kl.side_a @ r.Kl.side_b))

(* ------------------------------------------------------------------ *)
(* Autopart *)

let test_autopart_levels () =
  let pg = Autopart.generate (ar ()) ~k:3 Autopart.Levels in
  Alcotest.(check int) "3 parts" 3 (List.length pg.Chop_dfg.Partition.parts)

let test_autopart_min_cut () =
  let pg = Autopart.generate (ar ()) ~k:2 (Autopart.Min_cut 11) in
  (* legalization may merge, but the topological top-up restores k *)
  Alcotest.(check int) "exactly 2 parts" 2
    (List.length pg.Chop_dfg.Partition.parts);
  Alcotest.(check int) "covers all" 28
    (Chop_util.Listx.sum_by
       (fun p -> List.length p.Chop_dfg.Partition.members)
       pg.Chop_dfg.Partition.parts)

let test_autopart_random () =
  let pg = Autopart.generate (ar ()) ~k:4 (Autopart.Random_balanced 3) in
  Alcotest.(check int) "covers all" 28
    (Chop_util.Listx.sum_by
       (fun p -> List.length p.Chop_dfg.Partition.members)
       pg.Chop_dfg.Partition.parts)

let test_autopart_validates () =
  (match Autopart.generate (ar ()) ~k:0 Autopart.Levels with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "k=0 accepted");
  match Autopart.generate (ar ()) ~k:100 Autopart.Levels with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "k>ops accepted"

let test_strategy_names () =
  Alcotest.(check string) "levels" "levels" (Autopart.strategy_name Autopart.Levels);
  Alcotest.(check string) "min-cut" "min-cut" (Autopart.strategy_name (Autopart.Min_cut 0));
  Alcotest.(check string) "random" "random"
    (Autopart.strategy_name (Autopart.Random_balanced 0))

let autopart_always_valid =
  QCheck.Test.make ~name:"autopart strategies yield valid partitionings"
    ~count:40
    QCheck.(triple (10 -- 50) (0 -- 100) (1 -- 4))
    (fun (ops, seed, k) ->
      let g = Chop_dfg.Benchmarks.random_dag ~ops ~seed () in
      let levels = List.length (Chop_dfg.Analysis.levels g) in
      let k = max 1 (min k (min levels (ops / 2))) in
      List.for_all
        (fun strategy ->
          let pg = Autopart.generate g ~k strategy in
          Chop_util.Listx.sum_by
            (fun p -> List.length p.Chop_dfg.Partition.members)
            pg.Chop_dfg.Partition.parts
          = ops)
        [ Autopart.Levels; Autopart.Min_cut seed; Autopart.Random_balanced seed ])

(* min-cut does not imply feasibility: the paper's core argument. *)
let test_min_cut_not_feasibility () =
  let g = ar () in
  let cut_of pg = Chop_dfg.Partition.cut_bits_total pg in
  let levels = Autopart.generate g ~k:2 Autopart.Levels in
  let kl = Autopart.generate g ~k:2 (Autopart.Min_cut 1) in
  (* whatever the cut ordering, CHOP's feasibility judgement is about areas
     and rates, not cut bits; verify both partitionings even evaluate *)
  let feasible pg =
    if List.length pg.Chop_dfg.Partition.parts < 2 then false
    else begin
      let spec =
        Chop.Rig.custom ~graph:g ~partitioning:pg
          ~package:Chop_tech.Mosis.package_84
          ~clocks:(Chop_tech.Clocking.make ~main:300. ~datapath_ratio:10 ~transfer_ratio:1)
          ~style:(Chop_tech.Style.both Chop_tech.Style.Single_cycle)
          ~criteria:(Chop_bad.Feasibility.criteria ~perf:30000. ~delay:30000. ())
          ()
      in
      (explore_run Chop.Explore.Iterative spec).Chop.Explore.outcome
        .Chop.Search.feasible
      <> []
    end
  in
  ignore (cut_of levels, cut_of kl);
  Alcotest.(check bool) "level cut is feasible" true (feasible levels)

(* ------------------------------------------------------------------ *)
(* Autosearch *)

let autosearch_run ?(perf = 30000.) () =
  Autosearch.run ~max_partitions:3
    ~graph:(ar ())
    ~package:Chop_tech.Mosis.package_84
    ~clocks:(Chop_tech.Clocking.make ~main:300. ~datapath_ratio:10 ~transfer_ratio:1)
    ~style:(Chop_tech.Style.both Chop_tech.Style.Single_cycle)
    ~criteria:(Chop_bad.Feasibility.criteria ~perf ~delay:perf ())
    ()

let test_autosearch_finds_feasible () =
  let candidates = autosearch_run () in
  Alcotest.(check bool) "evaluated several" true (List.length candidates >= 3);
  match Autosearch.best candidates with
  | None -> Alcotest.fail "expected a feasible candidate"
  | Some c ->
      Alcotest.(check bool) "feasible" true c.Autosearch.judgement.Chop.Advisor.feasible;
      Alcotest.(check bool) "describe text" true
        (String.length (Autosearch.describe c) > 10)

let test_autosearch_ranking () =
  let candidates = autosearch_run () in
  (* feasible candidates come before infeasible ones, sorted by perf *)
  let rec check_order seen_infeasible = function
    | [] -> true
    | c :: rest ->
        let feas = c.Autosearch.judgement.Chop.Advisor.feasible in
        if feas && seen_infeasible then false
        else check_order (seen_infeasible || not feas) rest
  in
  Alcotest.(check bool) "feasible first" true (check_order false candidates)

let test_autosearch_infeasible_constraints () =
  let candidates = autosearch_run ~perf:500. () in
  Alcotest.(check bool) "nothing feasible at 500 ns" true
    (Autosearch.best candidates = None)

let test_autosearch_cost () =
  let candidates = autosearch_run () in
  List.iter
    (fun c ->
      Alcotest.(check bool) "cost positive" true (c.Autosearch.chip_set_cost > 0.);
      (* cost is proportional to the chip count for a uniform package *)
      let per_chip = c.Autosearch.chip_set_cost /. float_of_int c.Autosearch.partitions in
      Alcotest.(check bool) "uniform per-chip cost" true
        (per_chip > 5. && per_chip < 200.))
    candidates;
  match Autosearch.cheapest candidates with
  | None -> Alcotest.fail "expected a cheapest feasible candidate"
  | Some c ->
      (* no feasible candidate is cheaper *)
      List.iter
        (fun other ->
          if other.Autosearch.judgement.Chop.Advisor.feasible then
            Alcotest.(check bool) "cheapest" true
              (c.Autosearch.chip_set_cost <= other.Autosearch.chip_set_cost))
        candidates

let test_autosearch_validates () =
  match autosearch_run () with
  | _ -> (
      match
        Autosearch.run ~max_partitions:0 ~graph:(ar ())
          ~package:Chop_tech.Mosis.package_84
          ~clocks:(Chop_tech.Clocking.make ~main:300. ~datapath_ratio:10 ~transfer_ratio:1)
          ~style:(Chop_tech.Style.both Chop_tech.Style.Single_cycle)
          ~criteria:(Chop_bad.Feasibility.criteria ~perf:30000. ~delay:30000. ())
          ()
      with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "max_partitions 0 accepted")

(* ------------------------------------------------------------------ *)
(* Packing *)

let test_packing_reduces_chips () =
  let spec = Chop.Rig.experiment1 ~partitions:3 () in
  let packed = Packing.pack spec ~chips:2 in
  Alcotest.(check int) "two chips" 2 (List.length packed.Chop.Spec.chips);
  Alcotest.(check int) "all partitions assigned" 3
    (List.length packed.Chop.Spec.assignment);
  (* both chips carry something *)
  let on chip =
    List.length (List.filter (fun (_, c) -> c = chip) packed.Chop.Spec.assignment)
  in
  Alcotest.(check bool) "no empty chip" true (on "chip1" >= 1 && on "chip2" >= 1)

let test_packing_balances_area () =
  let spec = Chop.Rig.experiment1 ~partitions:3 () in
  let packed = Packing.pack spec ~chips:2 in
  let load chip =
    List.filter (fun (_, c) -> c = chip) packed.Chop.Spec.assignment
    |> Chop_util.Listx.sum_byf (fun (label, _) ->
           Packing.min_area_estimate packed ~label)
  in
  let l1 = load "chip1" and l2 = load "chip2" in
  (* first-fit decreasing keeps the imbalance below one largest item *)
  let largest =
    List.fold_left
      (fun acc p ->
        Float.max acc
          (Packing.min_area_estimate packed ~label:p.Chop_dfg.Partition.label))
      0. packed.Chop.Spec.partitioning.Chop_dfg.Partition.parts
  in
  Alcotest.(check bool) "balanced" true (Float.abs (l1 -. l2) <= largest +. 1.)

let test_packing_explorable () =
  (* the packed spec still runs the whole pipeline; on-chip flows are free *)
  let spec = Chop.Rig.experiment1 ~partitions:3 () in
  let packed = Packing.pack spec ~chips:2 in
  let report = explore_run Chop.Explore.Iterative packed in
  Alcotest.(check bool) "produces a verdict" true
    (report.Chop.Explore.bad <> [])

let test_packing_validates () =
  let spec = Chop.Rig.experiment1 ~partitions:2 () in
  (match Packing.pack spec ~chips:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "0 chips accepted");
  match Packing.pack spec ~chips:5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "more chips than partitions accepted"

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "chop_baseline"
    [
      ( "kl",
        [
          tc "cut bits" `Quick test_cut_bits_manual;
          tc "balanced" `Quick test_bipartition_balanced;
          tc "improves on naive" `Quick test_bipartition_improves_on_random;
          tc "tiny graph" `Quick test_bipartition_tiny_graph;
          tc "legalize acyclic" `Quick test_legalize_makes_quotient_acyclic;
          tc "legalize valid partitioning" `Quick test_legalize_builds_valid_partitioning;
          QCheck_alcotest.to_alcotest kl_deterministic;
          QCheck_alcotest.to_alcotest legalize_preserves_nodes;
        ] );
      ( "autopart",
        [
          tc "levels" `Quick test_autopart_levels;
          tc "min-cut" `Quick test_autopart_min_cut;
          tc "random" `Quick test_autopart_random;
          tc "validates" `Quick test_autopart_validates;
          tc "strategy names" `Quick test_strategy_names;
          QCheck_alcotest.to_alcotest autopart_always_valid;
        ] );
      ( "autosearch",
        [
          tc "finds feasible" `Quick test_autosearch_finds_feasible;
          tc "ranking" `Quick test_autosearch_ranking;
          tc "infeasible constraints" `Quick test_autosearch_infeasible_constraints;
          tc "validates" `Quick test_autosearch_validates;
          tc "cost model" `Quick test_autosearch_cost;
        ] );
      ( "packing",
        [
          tc "reduces chips" `Quick test_packing_reduces_chips;
          tc "balances area" `Quick test_packing_balances_area;
          tc "explorable" `Quick test_packing_explorable;
          tc "validates" `Quick test_packing_validates;
        ] );
      ( "paper-argument",
        [ tc "min-cut is not feasibility" `Quick test_min_cut_not_feasibility ] );
    ]
