(* Tests for chop_util: triplets, probability, Pareto pruning, units,
   list helpers and the table renderer. *)

open Chop_util

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let check_float name expected got =
  Alcotest.(check (float 1e-9)) name expected got

(* ------------------------------------------------------------------ *)
(* Triplet *)

let test_triplet_make () =
  let t = Triplet.make ~low:1. ~likely:2. ~high:4. in
  check_float "low" 1. t.Triplet.low;
  check_float "likely" 2. t.Triplet.likely;
  check_float "high" 4. t.Triplet.high

let test_triplet_ordering_enforced () =
  Alcotest.check_raises "unordered" (Invalid_argument "Triplet.make: unordered (3, 2, 4)")
    (fun () -> ignore (Triplet.make ~low:3. ~likely:2. ~high:4.))

let test_triplet_non_finite () =
  Alcotest.check_raises "nan" (Invalid_argument "Triplet.make: non-finite component")
    (fun () -> ignore (Triplet.make ~low:Float.nan ~likely:2. ~high:4.))

let test_triplet_exact () =
  let t = Triplet.exact 5. in
  Alcotest.(check bool) "is_exact" true (Triplet.is_exact t);
  check_float "mean" 5. (Triplet.mean t);
  check_float "variance" 0. (Triplet.variance t)

let test_triplet_spread () =
  let t = Triplet.spread 100. in
  check_float "low" 90. t.Triplet.low;
  check_float "high" 110. t.Triplet.high;
  Alcotest.check_raises "negative"
    (Invalid_argument "Triplet.spread: negative value") (fun () ->
      ignore (Triplet.spread (-1.)))

let test_triplet_add () =
  let a = Triplet.make ~low:1. ~likely:2. ~high:3. in
  let b = Triplet.make ~low:10. ~likely:20. ~high:30. in
  let s = Triplet.add a b in
  check_float "low" 11. s.Triplet.low;
  check_float "likely" 22. s.Triplet.likely;
  check_float "high" 33. s.Triplet.high

let test_triplet_sum_empty () =
  Alcotest.(check bool) "zero" true (Triplet.equal (Triplet.sum []) Triplet.zero)

let test_triplet_scale () =
  let t = Triplet.scale 2. (Triplet.make ~low:1. ~likely:2. ~high:3.) in
  check_float "high" 6. t.Triplet.high;
  Alcotest.check_raises "negative factor"
    (Invalid_argument "Triplet.scale: negative factor") (fun () ->
      ignore (Triplet.scale (-1.) Triplet.zero))

let test_triplet_max2 () =
  let a = Triplet.make ~low:1. ~likely:5. ~high:6. in
  let b = Triplet.make ~low:2. ~likely:3. ~high:9. in
  let m = Triplet.max2 a b in
  check_float "low" 2. m.Triplet.low;
  check_float "likely" 5. m.Triplet.likely;
  check_float "high" 9. m.Triplet.high

let test_triplet_mean_variance () =
  (* standard triangular on [0, 1] with mode 0.5 *)
  let t = Triplet.make ~low:0. ~likely:0.5 ~high:1. in
  check_float "mean" 0.5 (Triplet.mean t);
  check_float "variance" (1. /. 24.) (Triplet.variance t)

let test_triplet_cdf_bounds () =
  let t = Triplet.make ~low:10. ~likely:20. ~high:40. in
  check_float "below" 0. (Triplet.cdf t 9.);
  check_float "at low" 0. (Triplet.cdf t 10.);
  check_float "at high" 1. (Triplet.cdf t 40.);
  check_float "above" 1. (Triplet.cdf t 50.)

let test_triplet_cdf_mode () =
  (* P(X <= mode) = (mode-low)/(high-low) for a triangular *)
  let t = Triplet.make ~low:0. ~likely:0.25 ~high:1. in
  check_float "at mode" 0.25 (Triplet.cdf t 0.25)

let test_triplet_cdf_degenerate () =
  let t = Triplet.exact 5. in
  check_float "below" 0. (Triplet.cdf t 4.999);
  check_float "at" 1. (Triplet.cdf t 5.);
  check_float "above" 1. (Triplet.cdf t 6.)

let test_triplet_compare () =
  let a = Triplet.make ~low:1. ~likely:2. ~high:3. in
  let b = Triplet.make ~low:1. ~likely:3. ~high:3. in
  Alcotest.(check bool) "a < b" true (Triplet.compare a b < 0);
  Alcotest.(check bool) "equal" true (Triplet.equal a a)

let triplet_cdf_monotone =
  QCheck.Test.make ~name:"triplet cdf is monotone" ~count:200
    QCheck.(triple (float_bound_inclusive 100.) (float_bound_inclusive 100.)
              (pair (float_bound_inclusive 200.) (float_bound_inclusive 200.)))
    (fun (a, b, (x1, x2)) ->
      let low = Float.min a b and m = Float.max a b in
      let t = Triplet.make ~low ~likely:m ~high:(m +. 10.) in
      let lo_x = Float.min x1 x2 and hi_x = Float.max x1 x2 in
      Triplet.cdf t lo_x <= Triplet.cdf t hi_x +. 1e-12)

let triplet_sum_mean_additive =
  QCheck.Test.make ~name:"mean of sum = sum of means" ~count:200
    QCheck.(list_of_size Gen.(1 -- 8) (float_bound_inclusive 50.))
    (fun vs ->
      let ts = List.map (fun v -> Triplet.spread v) vs in
      feq ~eps:1e-6
        (Triplet.mean (Triplet.sum ts))
        (List.fold_left (fun acc t -> acc +. Triplet.mean t) 0. ts))

(* ------------------------------------------------------------------ *)
(* Prob *)

let test_normal_cdf_symmetry () =
  check_float "at mean" 0.5 (Prob.normal_cdf ~mean:0. ~std:1. 0.);
  let p = Prob.normal_cdf ~mean:0. ~std:1. 1.6449 in
  Alcotest.(check bool) "95th percentile" true (Float.abs (p -. 0.95) < 1e-3)

let test_normal_cdf_degenerate () =
  check_float "step below" 0. (Prob.normal_cdf ~mean:5. ~std:0. 4.);
  check_float "step above" 1. (Prob.normal_cdf ~mean:5. ~std:0. 5.)

let test_of_sum_empty () =
  check_float "empty vs 0" 1. (Prob.of_sum [] 0.);
  check_float "empty vs neg" 0. (Prob.of_sum [] (-1.))

let test_of_sum_singleton_exact () =
  let t = Triplet.make ~low:0. ~likely:0.5 ~high:1. in
  check_float "triangular" (Triplet.cdf t 0.25) (Prob.of_sum [ t ] 0.25)

let test_of_sum_support_clipping () =
  let parts = [ Triplet.spread 100.; Triplet.spread 200. ] in
  check_float "above joint high" 1. (Prob.of_sum parts 1000.);
  check_float "below joint low" 0. (Prob.of_sum parts 1.)

let test_of_sum_normal_middle () =
  let parts = [ Triplet.spread 100.; Triplet.spread 100. ] in
  let p = Prob.of_sum parts 200. in
  Alcotest.(check bool) "centered" true (Float.abs (p -. 0.5) < 0.01)

let test_meets () =
  let t = Triplet.make ~low:0. ~likely:50. ~high:100. in
  Alcotest.(check bool) "meets at 0.5" true (Prob.meets ~prob:0.5 t 50.);
  Alcotest.(check bool) "fails at 1.0" false (Prob.meets ~prob:1.0 t 50.);
  Alcotest.(check bool) "certain at high" true (Prob.meets ~prob:1.0 t 100.)

let test_meets_invalid_prob () =
  Alcotest.check_raises "prob > 1"
    (Invalid_argument "Prob: probability out of [0,1]") (fun () ->
      ignore (Prob.meets ~prob:1.5 Triplet.zero 0.))

(* ------------------------------------------------------------------ *)
(* Pareto *)

let test_dominates_basic () =
  Alcotest.(check bool) "strict" true (Pareto.dominates [| 1.; 1. |] [| 2.; 2. |]);
  Alcotest.(check bool) "partial" true (Pareto.dominates [| 1.; 2. |] [| 2.; 2. |]);
  Alcotest.(check bool) "equal" false (Pareto.dominates [| 2.; 2. |] [| 2.; 2. |]);
  Alcotest.(check bool) "incomparable" false
    (Pareto.dominates [| 1.; 3. |] [| 2.; 2. |])

let test_dominates_mismatch () =
  Alcotest.check_raises "length"
    (Invalid_argument "Pareto.dominates: objective length mismatch") (fun () ->
      ignore (Pareto.dominates [| 1. |] [| 1.; 2. |]))

let test_frontier_keeps_non_dominated () =
  let pts = [ (1., 3.); (2., 2.); (3., 1.); (3., 3.) ] in
  let front = Pareto.frontier ~objectives:(fun (a, b) -> [| a; b |]) pts in
  Alcotest.(check int) "three survivors" 3 (List.length front);
  Alcotest.(check bool) "dominated dropped" false (List.mem (3., 3.) front)

let test_frontier_duplicates_kept () =
  let pts = [ (1., 1.); (1., 1.) ] in
  let front = Pareto.frontier ~objectives:(fun (a, b) -> [| a; b |]) pts in
  Alcotest.(check int) "both kept" 2 (List.length front)

let test_frontier_empty () =
  Alcotest.(check int) "empty" 0
    (List.length (Pareto.frontier ~objectives:(fun x -> [| x |]) []))

let frontier_is_subset_and_undominated =
  QCheck.Test.make ~name:"frontier elements are never dominated" ~count:100
    QCheck.(list_of_size Gen.(0 -- 30) (pair (0 -- 20) (0 -- 20)))
    (fun pts ->
      let objectives (a, b) = [| float_of_int a; float_of_int b |] in
      let front = Pareto.frontier ~objectives pts in
      List.for_all
        (fun f ->
          List.mem f pts
          && not (List.exists (fun p -> Pareto.dominates (objectives p) (objectives f)) pts))
        front)

(* ------------------------------------------------------------------ *)
(* Units *)

let test_mil2_of_dims () =
  check_float "area" 6. (Units.mil2_of_dims ~width:2. ~height:3.);
  Alcotest.check_raises "negative"
    (Invalid_argument "Units.mil2_of_dims: negative") (fun () ->
      ignore (Units.mil2_of_dims ~width:(-1.) ~height:3.))

let test_ceil_div () =
  Alcotest.(check int) "exact" 2 (Units.ceil_div 4 2);
  Alcotest.(check int) "round up" 3 (Units.ceil_div 5 2);
  Alcotest.(check int) "zero" 0 (Units.ceil_div 0 7);
  Alcotest.check_raises "bad divisor"
    (Invalid_argument "Units.ceil_div: non-positive divisor") (fun () ->
      ignore (Units.ceil_div 1 0))

let test_ceil_div_ns () =
  Alcotest.(check int) "exact" 2 (Units.ceil_div_ns 600. 300.);
  Alcotest.(check int) "round up" 3 (Units.ceil_div_ns 601. 300.);
  Alcotest.(check int) "zero" 0 (Units.ceil_div_ns 0. 300.);
  Alcotest.check_raises "bad cycle"
    (Invalid_argument "Units.ceil_div_ns: non-positive cycle") (fun () ->
      ignore (Units.ceil_div_ns 1. 0.))

(* ------------------------------------------------------------------ *)
(* Listx *)

let test_cartesian () =
  Alcotest.(check (list (list int))) "empty" [ [] ] (Listx.cartesian []);
  Alcotest.(check (list (list int))) "2x2"
    [ [ 1; 3 ]; [ 1; 4 ]; [ 2; 3 ]; [ 2; 4 ] ]
    (Listx.cartesian [ [ 1; 2 ]; [ 3; 4 ] ])

let test_cartesian_count () =
  Alcotest.(check int) "count" 12 (Listx.cartesian_count [ [ 1; 2 ]; [ 1; 2; 3 ]; [ 1; 2 ] ])

let test_fold_cartesian_matches () =
  let lists = [ [ 1; 2 ]; [ 3 ]; [ 4; 5; 6 ] ] in
  let via_fold =
    List.rev (Listx.fold_cartesian (fun acc combo -> combo :: acc) [] lists)
  in
  Alcotest.(check (list (list int))) "same order" (Listx.cartesian lists) via_fold

let test_range () =
  Alcotest.(check (list int)) "normal" [ 2; 3; 4 ] (Listx.range 2 4);
  Alcotest.(check (list int)) "single" [ 7 ] (Listx.range 7 7);
  Alcotest.(check (list int)) "empty" [] (Listx.range 3 2)

let test_sums () =
  Alcotest.(check int) "sum_by" 6 (Listx.sum_by Fun.id [ 1; 2; 3 ]);
  check_float "sum_byf" 6. (Listx.sum_byf Fun.id [ 1.; 2.; 3. ]);
  check_float "max_by empty" 0. (Listx.max_by Fun.id []);
  check_float "max_by" 3. (Listx.max_by Fun.id [ 1.; 3.; 2. ])

let test_uniq_count () =
  Alcotest.(check int) "distinct" 3
    (Listx.uniq_count ~compare:Int.compare [ 1; 2; 2; 3; 3; 3 ]);
  Alcotest.(check int) "empty" 0 (Listx.uniq_count ~compare:Int.compare [])

let test_take () =
  Alcotest.(check (list int)) "prefix" [ 1; 2 ] (Listx.take 2 [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "short" [ 1 ] (Listx.take 5 [ 1 ]);
  Alcotest.(check (list int)) "negative" [] (Listx.take (-1) [ 1 ])

(* ------------------------------------------------------------------ *)
(* Gantt *)

let test_gantt_renders () =
  let bars =
    [ { Gantt.bar_label = "pu_P1"; start = 0; finish = 40 };
      { Gantt.bar_label = "dt"; start = 40; finish = 42 };
      { Gantt.bar_label = "event"; start = 10; finish = 10 } ]
  in
  let s = Gantt.render ~width:30 bars in
  let rows = String.split_on_char '\n' s in
  Alcotest.(check int) "3 bars + axis + trailing" 5 (List.length rows);
  Alcotest.(check bool) "occupied marks" true (String.contains s '#');
  Alcotest.(check bool) "event mark" true (String.contains s '|')

let test_gantt_empty_and_errors () =
  Alcotest.(check string) "placeholder" "  (no tasks)\n" (Gantt.render []);
  (match Gantt.render ~width:5 [ { Gantt.bar_label = "x"; start = 0; finish = 1 } ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "narrow width accepted");
  match Gantt.render [ { Gantt.bar_label = "x"; start = 5; finish = 1 } ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative bar accepted"

(* ------------------------------------------------------------------ *)
(* Texttable *)

let test_texttable_renders () =
  let t = Texttable.create ~title:"T" [ ("a", Texttable.Left); ("b", Texttable.Right) ] in
  Texttable.add_row t [ "x"; "1" ];
  Texttable.add_separator t;
  Texttable.add_row t [ "yy"; "22" ];
  let s = Texttable.render t in
  Alcotest.(check bool) "has title" true (String.length s > 0 && s.[0] = 'T');
  Alcotest.(check bool) "has cell" true
    (String.split_on_char '\n' s |> List.exists (fun l -> String.length l > 0))

let test_texttable_row_width_checked () =
  let t = Texttable.create [ ("a", Texttable.Left) ] in
  Alcotest.check_raises "wrong width"
    (Invalid_argument "Texttable.add_row: wrong number of cells") (fun () ->
      Texttable.add_row t [ "1"; "2" ])

let test_texttable_cells () =
  Alcotest.(check string) "int" "42" (Texttable.cell_int 42);
  Alcotest.(check string) "float" "3.14" (Texttable.cell_float ~decimals:2 3.14159)

(* ------------------------------------------------------------------ *)
(* Scatter *)

let test_scatter_empty () =
  Alcotest.(check string) "placeholder" "  (no points)\n" (Scatter.render [])

let test_scatter_renders_grid () =
  let points = [ (0., 0.); (1., 1.); (0.5, 0.5); (0.5, 0.5); (0.5, 0.5) ] in
  let s = Scatter.render ~cols:10 ~lines:5 ~x_label:"d" ~y_label:"p" points in
  let rows = String.split_on_char '\n' s in
  (* 1 header + 5 grid rows + 1 footer + trailing *)
  Alcotest.(check int) "row count" 8 (List.length rows);
  Alcotest.(check bool) "labels present" true
    (String.length (List.nth rows 0) > 0 && s.[2] = 'p')

let test_scatter_validates () =
  match Scatter.render ~cols:1 [ (0., 0.) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "1-column grid accepted"

let test_scatter_degenerate_range () =
  (* all points identical: must not divide by zero *)
  let s = Scatter.render [ (5., 5.); (5., 5.) ] in
  Alcotest.(check bool) "renders" true (String.length s > 0)

(* ------------------------------------------------------------------ *)
(* Pool *)

(* run the body against a live pool and always join its workers; the
   stress tests oversubscribe so the concurrent machinery is exercised
   even on single-core hosts *)
let with_pool ?oversubscribe ~jobs f =
  let pool = Pool.create ?oversubscribe ~jobs () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let test_pool_map_order () =
  let xs = Listx.range 0 99 in
  let sq x = x * x in
  List.iter
    (fun jobs ->
      with_pool ~oversubscribe:true ~jobs (fun pool ->
          Alcotest.(check (list int))
            (Printf.sprintf "map_list jobs=%d" jobs)
            (List.map sq xs)
            (Pool.map_list pool sq xs)))
    [ 1; 2; 4; 8 ]

let test_pool_empty_and_singleton () =
  with_pool ~oversubscribe:true ~jobs:4 (fun pool ->
      Alcotest.(check (list int)) "empty" []
        (Pool.map_list pool (fun x -> x) []);
      Alcotest.(check (list int)) "singleton" [ 7 ]
        (Pool.map_list pool (fun x -> x + 1) [ 6 ]))

let test_pool_exception_propagates () =
  with_pool ~oversubscribe:true ~jobs:4 (fun pool ->
      match
        Pool.map_list pool
          (fun x -> if x = 3 then failwith "boom" else x)
          [ 1; 2; 3; 4 ]
      with
      | exception Failure msg -> Alcotest.(check string) "message" "boom" msg
      | _ -> Alcotest.fail "exception swallowed")

let test_pool_validates () =
  (match Pool.create ~jobs:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "jobs=0 accepted");
  with_pool ~jobs:3 (fun pool -> Alcotest.(check int) "jobs" 3 (Pool.jobs pool));
  (* the core-count clamp caps helper domains, not the reported budget,
     and a clamped pool still runs batches correctly *)
  with_pool ~jobs:64 (fun pool ->
      Alcotest.(check int) "requested jobs reported" 64 (Pool.jobs pool);
      Alcotest.(check int) "clamped pool still runs" 9
        (Pool.run pool (Array.init 10 (fun i () -> i))).(9));
  Alcotest.(check int) "sequential" 1 (Pool.jobs Pool.sequential);
  Alcotest.(check bool) "default positive" true (Pool.default_jobs () >= 1)

let test_pool_many_tiny_tasks () =
  (* 1000 near-free tasks: the chunked cursor must visit every index
     exactly once and keep results positional *)
  with_pool ~oversubscribe:true ~jobs:4 (fun pool ->
      let n = 1000 in
      let hits = Array.make n 0 in
      let tasks =
        Array.init n (fun i () ->
            hits.(i) <- hits.(i) + 1;
            i * 2)
      in
      let results, stats = Pool.run_timed pool tasks in
      Array.iteri
        (fun i r -> if r <> i * 2 then Alcotest.failf "slot %d holds %d" i r)
        results;
      Array.iteri
        (fun i h -> if h <> 1 then Alcotest.failf "task %d ran %d times" i h)
        hits;
      Alcotest.(check bool) "work was chunked" true
        (stats.Pool.chunk_count > 1);
      Alcotest.(check bool) "chunks cover the index space" true
        (stats.Pool.chunk_count <= n))

let test_pool_uneven_costs () =
  (* a few heavy tasks among many light ones: chunking must not lose or
     reorder anything when workers finish at very different times *)
  with_pool ~oversubscribe:true ~jobs:4 (fun pool ->
      let n = 200 in
      let spin_until_distinct i =
        (* burn a little real time on the heavy indices *)
        if i mod 50 = 0 then begin
          let t0 = Unix.gettimeofday () in
          while Unix.gettimeofday () -. t0 < 0.002 do
            ignore (Sys.opaque_identity (i * i))
          done
        end;
        i + 1
      in
      let tasks = Array.init n (fun i () -> spin_until_distinct i) in
      let results = Pool.run pool tasks in
      Alcotest.(check (list int)) "positional results"
        (List.init n (fun i -> i + 1))
        (Array.to_list results))

let test_pool_exception_mid_batch_drains () =
  (* a failure must not kill workers or strand tasks: the whole batch
     drains, the first failing index's exception is re-raised, and the
     pool stays usable *)
  with_pool ~oversubscribe:true ~jobs:4 (fun pool ->
      let n = 300 in
      let ran = Array.make n false in
      let tasks =
        Array.init n (fun i () ->
            ran.(i) <- true;
            if i mod 97 = 5 then failwith (Printf.sprintf "task-%d" i);
            i)
      in
      (match Pool.run pool tasks with
      | exception Failure msg ->
          (* index 5 is the first failure in index order *)
          Alcotest.(check string) "first error by index" "task-5" msg
      | _ -> Alcotest.fail "exception swallowed");
      Alcotest.(check bool) "every task still ran" true
        (Array.for_all Fun.id ran);
      (* the same pool accepts further batches *)
      let again = Pool.run pool (Array.init 50 (fun i () -> i)) in
      Alcotest.(check int) "pool reusable after failure" 49 again.(49))

let test_pool_reuse_many_runs () =
  with_pool ~oversubscribe:true ~jobs:3 (fun pool ->
      for round = 1 to 50 do
        let results = Pool.run pool (Array.init 40 (fun i () -> i * round)) in
        Alcotest.(check int)
          (Printf.sprintf "round %d" round)
          (39 * round) results.(39)
      done)

let test_pool_shutdown_idempotent () =
  let pool = Pool.create ~oversubscribe:true ~jobs:4 () in
  let r = Pool.run pool (Array.init 10 (fun i () -> i)) in
  Alcotest.(check int) "ran before shutdown" 9 r.(9);
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* a parallel batch on a shut-down pool must be refused... *)
  (match Pool.run pool (Array.init 10 (fun i () -> i)) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "run on a shut-down pool succeeded");
  (* ...and shutting down the sequential pool is a no-op *)
  Pool.shutdown Pool.sequential;
  Alcotest.(check int) "sequential survives shutdown" 3
    (Pool.run Pool.sequential [| (fun () -> 3) |]).(0)

let test_pool_run_timed_stats () =
  with_pool ~oversubscribe:true ~jobs:2 (fun pool ->
      let _, stats = Pool.run_timed pool (Array.init 64 (fun i () -> i)) in
      Alcotest.(check int) "one busy slot per participant" 2
        (Array.length stats.Pool.worker_busy);
      Alcotest.(check bool) "busy times are non-negative" true
        (Array.for_all (fun s -> s >= 0.) stats.Pool.worker_busy);
      Alcotest.(check bool) "caller participated" true
        (stats.Pool.worker_busy.(0) > 0.));
  (* inline path: one participant, zero or one chunk *)
  let _, empty_stats = Pool.run_timed Pool.sequential [||] in
  Alcotest.(check int) "empty batch has no chunks" 0
    empty_stats.Pool.chunk_count;
  let _, seq_stats = Pool.run_timed Pool.sequential [| (fun () -> ()) |] in
  Alcotest.(check int) "sequential run is one chunk" 1
    seq_stats.Pool.chunk_count

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "chop_util"
    [
      ( "triplet",
        [
          tc "make" `Quick test_triplet_make;
          tc "ordering enforced" `Quick test_triplet_ordering_enforced;
          tc "non-finite rejected" `Quick test_triplet_non_finite;
          tc "exact" `Quick test_triplet_exact;
          tc "spread" `Quick test_triplet_spread;
          tc "add" `Quick test_triplet_add;
          tc "sum empty" `Quick test_triplet_sum_empty;
          tc "scale" `Quick test_triplet_scale;
          tc "max2" `Quick test_triplet_max2;
          tc "mean/variance" `Quick test_triplet_mean_variance;
          tc "cdf bounds" `Quick test_triplet_cdf_bounds;
          tc "cdf mode" `Quick test_triplet_cdf_mode;
          tc "cdf degenerate" `Quick test_triplet_cdf_degenerate;
          tc "compare" `Quick test_triplet_compare;
          QCheck_alcotest.to_alcotest triplet_cdf_monotone;
          QCheck_alcotest.to_alcotest triplet_sum_mean_additive;
        ] );
      ( "prob",
        [
          tc "normal cdf symmetry" `Quick test_normal_cdf_symmetry;
          tc "normal cdf degenerate" `Quick test_normal_cdf_degenerate;
          tc "of_sum empty" `Quick test_of_sum_empty;
          tc "of_sum singleton exact" `Quick test_of_sum_singleton_exact;
          tc "of_sum clipping" `Quick test_of_sum_support_clipping;
          tc "of_sum normal middle" `Quick test_of_sum_normal_middle;
          tc "meets" `Quick test_meets;
          tc "meets invalid prob" `Quick test_meets_invalid_prob;
        ] );
      ( "pareto",
        [
          tc "dominates" `Quick test_dominates_basic;
          tc "dominates mismatch" `Quick test_dominates_mismatch;
          tc "frontier" `Quick test_frontier_keeps_non_dominated;
          tc "frontier duplicates" `Quick test_frontier_duplicates_kept;
          tc "frontier empty" `Quick test_frontier_empty;
          QCheck_alcotest.to_alcotest frontier_is_subset_and_undominated;
        ] );
      ( "units",
        [
          tc "mil2_of_dims" `Quick test_mil2_of_dims;
          tc "ceil_div" `Quick test_ceil_div;
          tc "ceil_div_ns" `Quick test_ceil_div_ns;
        ] );
      ( "listx",
        [
          tc "cartesian" `Quick test_cartesian;
          tc "cartesian_count" `Quick test_cartesian_count;
          tc "fold_cartesian" `Quick test_fold_cartesian_matches;
          tc "range" `Quick test_range;
          tc "sums" `Quick test_sums;
          tc "uniq_count" `Quick test_uniq_count;
          tc "take" `Quick test_take;
        ] );
      ( "pool",
        [
          tc "deterministic order" `Quick test_pool_map_order;
          tc "empty + singleton" `Quick test_pool_empty_and_singleton;
          tc "exception propagates" `Quick test_pool_exception_propagates;
          tc "validates" `Quick test_pool_validates;
          tc "1000 tiny tasks" `Quick test_pool_many_tiny_tasks;
          tc "uneven task costs" `Quick test_pool_uneven_costs;
          tc "exception mid-batch drains" `Quick
            test_pool_exception_mid_batch_drains;
          tc "reuse across many runs" `Quick test_pool_reuse_many_runs;
          tc "shutdown idempotent" `Quick test_pool_shutdown_idempotent;
          tc "run_timed stats" `Quick test_pool_run_timed_stats;
        ] );
      ( "scatter",
        [
          tc "empty" `Quick test_scatter_empty;
          tc "grid" `Quick test_scatter_renders_grid;
          tc "validates" `Quick test_scatter_validates;
          tc "degenerate range" `Quick test_scatter_degenerate_range;
        ] );
      ( "gantt",
        [
          tc "renders" `Quick test_gantt_renders;
          tc "empty + errors" `Quick test_gantt_empty_and_errors;
        ] );
      ( "texttable",
        [
          tc "renders" `Quick test_texttable_renders;
          tc "row width checked" `Quick test_texttable_row_width_checked;
          tc "cells" `Quick test_texttable_cells;
        ] );
    ]
