(* Tests for the cluster layer: the consistent-hash ring, the client's
   deterministic retry schedule, the distributed slice-merge coverage
   checks, the session-table eviction race regression, and the gateway
   itself — byte-identity with a single-process serve across stateless
   forwarding, fan-out merging, sticky sessions, migration and
   snapshot failover. *)

module Json = Chop_util.Json
module Protocol = Chop_server.Protocol
module Server = Chop_server.Server
module Client = Chop_server.Client
module Ops = Chop_server.Ops
module Session_table = Chop_server.Session_table
module Ring = Chop_gateway.Ring
module Gateway = Chop_gateway.Gateway

let parse_response line =
  match Json.parse line with
  | Ok v -> v
  | Error msg -> Alcotest.failf "unparseable response %S: %s" line msg

let field resp path =
  List.fold_left
    (fun v name -> Option.bind v (Json.member name))
    (Some resp) path

let text_of line =
  let resp = parse_response line in
  match Protocol.response_text resp with
  | Some t -> t
  | None -> Alcotest.failf "response has no result.text: %s" line

let ok_of line = Protocol.response_ok (parse_response line) = Some true

(* ------------------------------------------------------------------ *)
(* Ring *)

let test_ring_deterministic () =
  let nodes = [ "alpha"; "bravo"; "charlie" ] in
  let r1 = Ring.create nodes and r2 = Ring.create nodes in
  for i = 0 to 199 do
    let key = Printf.sprintf "key-%d" i in
    Alcotest.(check (option string))
      (Printf.sprintf "lookup %s agrees across instances" key)
      (Ring.lookup r1 key) (Ring.lookup r2 key);
    Alcotest.(check (option string)) "lookup = head of spread"
      (Ring.lookup r1 key)
      (List.nth_opt (Ring.spread r1 key) 0)
  done

let test_ring_spread_and_avoid () =
  let nodes = [ "alpha"; "bravo"; "charlie" ] in
  let r = Ring.create nodes in
  let spread = Ring.spread r "some-session" in
  Alcotest.(check (list string)) "spread is a permutation of the nodes"
    (List.sort compare nodes)
    (List.sort compare spread);
  (* avoiding the preferred node yields the next in preference order *)
  let first = List.nth spread 0 and second = List.nth spread 1 in
  Alcotest.(check (option string)) "avoid skips to the fallback"
    (Some second)
    (Ring.lookup ~avoid:[ first ] r "some-session");
  Alcotest.(check (option string)) "all avoided" None
    (Ring.lookup ~avoid:nodes r "some-session")

let test_ring_balance () =
  let nodes = [ "alpha"; "bravo" ] in
  let r = Ring.create nodes in
  let owned = Hashtbl.create 4 in
  for i = 0 to 199 do
    match Ring.lookup r (Printf.sprintf "engine-key-%d" i) with
    | Some n -> Hashtbl.replace owned n ()
    | None -> Alcotest.fail "lookup on a non-empty ring returned None"
  done;
  (* 200 keys over 64 vnodes/node: both backends must own some *)
  Alcotest.(check int) "both nodes own keys" 2 (Hashtbl.length owned)

let test_ring_validation () =
  let invalid f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "empty" true (invalid (fun () -> Ring.create []));
  Alcotest.(check bool) "duplicate" true
    (invalid (fun () -> Ring.create [ "a"; "a" ]));
  Alcotest.(check bool) "vnodes" true
    (invalid (fun () -> Ring.create ~vnodes:0 [ "a" ]))

(* ------------------------------------------------------------------ *)
(* Retry: deterministic backoff, fake clock *)

let test_backoff_deterministic () =
  let a = Client.backoff_delays ~seed:7 ~attempts:5 in
  let b = Client.backoff_delays ~seed:7 ~attempts:5 in
  Alcotest.(check (list (float 0.))) "same seed, same schedule" a b;
  Alcotest.(check bool) "different seed, different jitter" true
    (a <> Client.backoff_delays ~seed:8 ~attempts:5);
  Alcotest.(check int) "one delay per attempt" 5 (List.length a);
  List.iteri
    (fun i d ->
      let base = Float.min (0.05 *. (2. ** float_of_int i)) 2.0 in
      Alcotest.(check bool)
        (Printf.sprintf "delay %d within [base/2, base)" i)
        true
        (d >= base /. 2. && d < base))
    (Client.backoff_delays ~seed:3 ~attempts:10)

(* a sequential fake server: one reply per accepted connection (None =
   close without answering), so each rpc_retrying attempt is observable *)
let with_replying_server ~replies f =
  let socket_path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "chop-gw-fake-%d-%d.sock" (Unix.getpid ())
         (Hashtbl.hash replies))
  in
  if Sys.file_exists socket_path then Sys.remove socket_path;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX socket_path);
  Unix.listen fd 8;
  let server =
    Thread.create
      (fun () ->
        List.iter
          (fun reply ->
            let cfd, _ = Unix.accept fd in
            let ic = Unix.in_channel_of_descr cfd in
            (try ignore (input_line ic) with End_of_file -> ());
            (match reply with
            | Some line ->
                let oc = Unix.out_channel_of_descr cfd in
                output_string oc (line ^ "\n");
                flush oc
            | None -> ());
            try Unix.close cfd with Unix.Unix_error _ -> ())
          replies)
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      Thread.join server;
      (try Unix.close fd with Unix.Unix_error _ -> ());
      try Sys.remove socket_path with Sys_error _ -> ())
    (fun () -> f socket_path)

let overloaded_line =
  {|{"id":"r","ok":false,"error":{"code":"overloaded","message":"busy"}}|}

let ok_line = {|{"id":"r","ok":true,"op":"ping","result":{"pong":true}}|}

let ping = Json.parse_exn {|{"id":"r","op":"ping"}|}

let test_retry_overloaded_then_ok () =
  (* two overloaded rejections, then success: the client must sleep the
     first two scheduled delays and return the final Ok *)
  with_replying_server
    ~replies:[ Some overloaded_line; Some overloaded_line; Some ok_line ]
    (fun socket ->
      let slept = ref [] in
      let sleep d = slept := d :: !slept in
      match Client.rpc_retrying ~sleep ~retries:3 ~seed:11 ~socket ping with
      | Error msg -> Alcotest.failf "retrying rpc failed: %s" msg
      | Ok resp ->
          Alcotest.(check (option bool)) "final response ok" (Some true)
            (Protocol.response_ok resp);
          let expected =
            match Client.backoff_delays ~seed:11 ~attempts:3 with
            | d1 :: d2 :: _ -> [ d1; d2 ]
            | _ -> Alcotest.fail "schedule too short"
          in
          Alcotest.(check (list (float 0.))) "slept the scheduled delays"
            expected (List.rev !slept))

let test_retry_budget_exhausted_keeps_outcome () =
  (* every attempt answers overloaded: the last outcome is returned
     as-is (an Ok response carrying the overloaded error), so the CLI's
     exit-code mapping is unchanged by retrying *)
  with_replying_server
    ~replies:[ Some overloaded_line; Some overloaded_line; Some overloaded_line ]
    (fun socket ->
      let slept = ref [] in
      let sleep d = slept := d :: !slept in
      match Client.rpc_retrying ~sleep ~retries:2 ~seed:5 ~socket ping with
      | Error msg -> Alcotest.failf "expected the overloaded response: %s" msg
      | Ok resp ->
          Alcotest.(check (option string)) "still overloaded"
            (Some "overloaded")
            (Protocol.response_error_code resp);
          Alcotest.(check (list (float 0.))) "slept the whole schedule"
            (Client.backoff_delays ~seed:5 ~attempts:2)
            (List.rev !slept))

let test_retry_connect_refused () =
  let socket =
    Filename.concat (Filename.get_temp_dir_name ()) "chop-gw-nobody.sock"
  in
  if Sys.file_exists socket then Sys.remove socket;
  let slept = ref [] in
  let sleep d = slept := d :: !slept in
  (match Client.rpc_retrying ~sleep ~retries:3 ~seed:2 ~socket ping with
  | Ok _ -> Alcotest.fail "nobody listening yet rpc returned Ok"
  | Error msg ->
      Alcotest.(check bool) "structured connect error" true
        (String.starts_with ~prefix:"cannot connect to" msg));
  Alcotest.(check (list (float 0.))) "retried through the whole schedule"
    (Client.backoff_delays ~seed:2 ~attempts:3)
    (List.rev !slept)

let test_retry_zero_is_one_shot () =
  with_replying_server ~replies:[ Some overloaded_line ] (fun socket ->
      let slept = ref [] in
      let sleep d = slept := d :: !slept in
      (match Client.rpc_retrying ~sleep ~socket ping with
      | Ok resp ->
          Alcotest.(check (option string)) "overloaded returned directly"
            (Some "overloaded")
            (Protocol.response_error_code resp)
      | Error msg -> Alcotest.failf "one-shot rpc failed: %s" msg);
      Alcotest.(check (list (float 0.))) "never slept" [] !slept)

(* ------------------------------------------------------------------ *)
(* merge_slice_payloads: coverage validation *)

let slice ~index ?(trials = 1) () =
  { Ops.sl_index = index; sl_trials = trials; sl_admitted = []; sl_explored = [] }

let payload ~first_total slices =
  { Ops.sp_first_total = first_total; sp_bad = []; sp_slices = slices }

let test_merge_coverage () =
  (match
     Ops.merge_slice_payloads
       [
         payload ~first_total:2 [ slice ~index:0 () ];
         payload ~first_total:2 [ slice ~index:1 () ];
       ]
   with
  | Ok m ->
      Alcotest.(check int) "trials summed" 2 m.Ops.mx_trials;
      Alcotest.(check int) "no rows" 0 (List.length m.Ops.mx_explored)
  | Error e -> Alcotest.failf "exact cover rejected: %s" e);
  let rejected payloads =
    match Ops.merge_slice_payloads payloads with
    | Ok _ -> false
    | Error _ -> true
  in
  Alcotest.(check bool) "missing slice" true
    (rejected [ payload ~first_total:2 [ slice ~index:0 () ] ]);
  Alcotest.(check bool) "duplicate slice" true
    (rejected
       [
         payload ~first_total:2 [ slice ~index:0 () ];
         payload ~first_total:2 [ slice ~index:0 (); slice ~index:1 () ];
       ]);
  Alcotest.(check bool) "first_total disagreement" true
    (rejected
       [
         payload ~first_total:2 [ slice ~index:0 () ];
         payload ~first_total:3 [ slice ~index:1 () ];
       ]);
  Alcotest.(check bool) "no payloads" true (rejected [])

let test_row_wire_roundtrip () =
  let row =
    {
      Chop.Search.Row.ii_main = 3;
      clock = 150.;
      perf_ns = 2.5e4;
      delay_cycles = 17;
      delay_likely = 0.125;
      area_likely = 1.0e8 /. 3.;
      feasible = true;
    }
  in
  match Ops.row_of_json (Ops.row_to_json row) with
  | Ok row' ->
      Alcotest.(check bool) "row round-trips exactly (hex floats)" true
        (row = row')
  | Error e -> Alcotest.failf "row decode failed: %s" e

(* ------------------------------------------------------------------ *)
(* Session_table: the drain/eviction race regression *)

let make_session () =
  let spec = Result.get_ok (Ops.spec_of_params Protocol.default_params) in
  Chop.Explore.Session.create (Chop.Explore.Config.make ~jobs:1 ()) spec

let make_slot session =
  {
    Session_table.session;
    smu = Mutex.create ();
    last_used = Unix.gettimeofday ();
    open_params = Protocol.default_params;
    writer = "";
    observers = [];
    edits = 0;
  }

let test_prune_never_evicts_busy_session () =
  let session = make_session () in
  Fun.protect
    ~finally:(fun () -> Chop.Explore.Session.close session)
    (fun () ->
      let tbl = Session_table.create ~ttl_s:0.05 ~max_sessions:8 in
      let slot = make_slot session in
      (match Session_table.add tbl "s1" slot with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      let evicted = ref [] in
      let on_evict ~reason sid _slot = evicted := (reason, sid) :: !evicted in
      let now = Unix.gettimeofday () in
      (* an edit is in flight (session mutex held) while the slot looks
         long expired — the sweep must take the mutex first and leave the
         busy session alone, never snapshotting it mid-edit *)
      slot.Session_table.last_used <- now -. 10.;
      Mutex.lock slot.Session_table.smu;
      Session_table.prune tbl ~now ~room_for:0 ~on_evict;
      Alcotest.(check bool) "busy session survives the sweep" true
        (Session_table.find tbl "s1" <> None);
      Alcotest.(check int) "nothing evicted" 0 (List.length !evicted);
      (* the edit completes: last_used refreshed under the mutex; a sweep
         arriving with the stale pre-edit view must re-judge expiry after
         acquiring the mutex and keep the session *)
      slot.Session_table.last_used <- Unix.gettimeofday ();
      Mutex.unlock slot.Session_table.smu;
      Session_table.prune tbl ~now:(Unix.gettimeofday ()) ~room_for:0 ~on_evict;
      Alcotest.(check bool) "freshly-edited session survives" true
        (Session_table.find tbl "s1" <> None);
      (* genuinely idle past the TTL: evicted, with the mutex held *)
      slot.Session_table.last_used <- Unix.gettimeofday () -. 10.;
      Session_table.prune tbl ~now:(Unix.gettimeofday ()) ~room_for:0 ~on_evict;
      Alcotest.(check (list (pair string string))) "ttl eviction"
        [ ("ttl", "s1") ] !evicted;
      Alcotest.(check bool) "slot removed" true
        (Session_table.find tbl "s1" = None))

let test_prune_never_evicts_observed_session () =
  let session = make_session () in
  Fun.protect
    ~finally:(fun () -> Chop.Explore.Session.close session)
    (fun () ->
      let tbl = Session_table.create ~ttl_s:0.05 ~max_sessions:1 in
      let slot = make_slot session in
      slot.Session_table.observers <- [ "bob" ];
      slot.Session_table.last_used <- Unix.gettimeofday () -. 10.;
      (match Session_table.add tbl "s1" slot with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      let evicted = ref 0 in
      (* expired AND over capacity, yet observed: both passes skip it *)
      Session_table.prune tbl ~now:(Unix.gettimeofday ()) ~room_for:1
        ~on_evict:(fun ~reason:_ _ _ -> incr evicted);
      Alcotest.(check bool) "observed session survives" true
        (Session_table.find tbl "s1" <> None);
      Alcotest.(check int) "no eviction" 0 !evicted;
      (* the last observer detaches: the next sweep may take it *)
      slot.Session_table.observers <- [];
      Session_table.prune tbl ~now:(Unix.gettimeofday ()) ~room_for:1
        ~on_evict:(fun ~reason:_ _ _ -> incr evicted);
      Alcotest.(check int) "evicted once unobserved" 1 !evicted)

(* ------------------------------------------------------------------ *)
(* The gateway against real socket backends *)

let rm_rf dir =
  let rec go path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> go (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  if Sys.file_exists dir then go dir

(* N backend serve processes (in-process, socket transport) sharing one
   state dir, plus a gateway routing across them via handle_line. *)
let with_cluster ?(fanout = false) ?health_interval_s n f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "chop-gw-%d-%d" (Unix.getpid ()) (if fanout then 1 else 0))
  in
  rm_rf dir;
  Unix.mkdir dir 0o700;
  let socks =
    List.init n (fun i -> Filename.concat dir (Printf.sprintf "b%d.sock" i))
  in
  let servers =
    List.map
      (fun s ->
        Server.create
          {
            Server.default_config with
            socket_path = Some s;
            jobs = 1;
            log = None;
            handle_signals = false;
            state_dir = Some (Filename.concat dir "state");
          })
      socks
  in
  let threads = List.map (fun sv -> Thread.create Server.serve sv) servers in
  let gw =
    Gateway.create
      {
        Gateway.socket_path = None;
        backends = socks;
        vnodes = 64;
        fanout;
        log = None;
        handle_signals = false;
        health_interval_s;
      }
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter Server.stop servers;
      List.iter Thread.join threads;
      rm_rf dir)
    (fun () -> f ~gw ~socks ~servers ~threads)

(* the single-process reference every gateway answer must match *)
let make_reference () =
  Server.create
    {
      Server.default_config with
      socket_path = None;
      jobs = 1;
      log = None;
      handle_signals = false;
    }

let test_gateway_stateless_parity () =
  with_cluster 2 (fun ~gw ~socks:_ ~servers:_ ~threads:_ ->
      let reference = make_reference () in
      let check_parity name line =
        let got = Gateway.handle_line gw line in
        let want = Server.handle_line reference line in
        Alcotest.(check bool) (name ^ " ok") true (ok_of got);
        Alcotest.(check string)
          (name ^ " text byte-identical to single-process serve")
          (text_of want) (text_of got)
      in
      check_parity "explore"
        {|{"id":"e","op":"explore","benchmark":"ar","partitions":2,"keep_all":true}|};
      check_parity "predict"
        {|{"id":"p","op":"predict","benchmark":"ar","partitions":2,"top":2}|};
      check_parity "advise"
        {|{"id":"a","op":"advise","benchmark":"ar","partitions":2}|};
      let pong = Gateway.handle_line gw {|{"id":"pg","op":"ping"}|} in
      Alcotest.(check bool) "gateway answers ping locally" true (ok_of pong);
      let stats = parse_response (Gateway.handle_line gw {|{"op":"stats"}|}) in
      Alcotest.(check bool) "stats marks the gateway" true
        (field stats [ "result"; "gateway" ] = Some (Json.Bool true)))

let test_gateway_fanout_parity () =
  with_cluster ~fanout:true 2 (fun ~gw ~socks:_ ~servers:_ ~threads:_ ->
      let reference = make_reference () in
      let check_parity name line =
        let got = Gateway.handle_line gw line in
        let want = Server.handle_line reference line in
        Alcotest.(check bool) (name ^ " ok") true (ok_of got);
        Alcotest.(check string) (name ^ " merged text byte-identical")
          (text_of want) (text_of got);
        let f path resp = field (parse_response resp) path in
        List.iter
          (fun p ->
            Alcotest.(check bool)
              (Printf.sprintf "%s result.%s identical" name
                 (String.concat "." p))
              true
              (f ("result" :: p) got = f ("result" :: p) want))
          [ [ "feasible" ]; [ "feasible_count" ]; [ "trials" ] ]
      in
      check_parity "enumeration"
        {|{"id":"f1","op":"explore","benchmark":"ar","partitions":2,"heuristic":"e"}|};
      check_parity "branch-bound"
        {|{"id":"f2","op":"explore","benchmark":"ar","partitions":2,"heuristic":"b"}|};
      check_parity "enumeration keep-all"
        {|{"id":"f3","op":"explore","benchmark":"ar","partitions":2,"heuristic":"e","keep_all":true}|};
      let stats = parse_response (Gateway.handle_line gw {|{"op":"stats"}|}) in
      Alcotest.(check bool) "explores were fanned out" true
        (match
           Option.bind (field stats [ "result"; "fanned_out" ]) Json.to_int_opt
         with
        | Some n -> n >= 3
        | None -> false))

let test_gateway_sessions_migrate_failover () =
  with_cluster 2 (fun ~gw ~socks ~servers ~threads ->
      let reference = make_reference () in
      let both name line =
        let got = Gateway.handle_line gw line in
        let want = Server.handle_line reference line in
        if not (ok_of got) then
          Alcotest.failf "%s failed via gateway: %s" name got;
        Alcotest.(check string) (name ^ " text parity") (text_of want)
          (text_of got);
        got
      in
      (* open: the gateway allocates s1, exactly as a single process would *)
      let opened =
        both "open"
          {|{"id":"o","op":"session/open","benchmark":"ar","partitions":2,"client":"alice"}|}
      in
      Alcotest.(check (option string)) "gateway session id" (Some "s1")
        (Option.bind
           (field (parse_response opened) [ "result"; "session" ])
           Json.to_string_opt);
      ignore
        (both "edit"
           {|{"id":"ed","op":"session/edit","session":"s1","client":"alice","edits":["merge P2 P1"]}|});
      ignore (both "run" {|{"id":"r1","op":"session/run","session":"s1"}|});
      ignore
        (both "undo"
           {|{"id":"u","op":"session/undo","session":"s1","client":"alice"}|});
      ignore
        (both "redo"
           {|{"id":"rd","op":"session/redo","session":"s1","client":"alice"}|});
      ignore
        (both "attach"
           {|{"id":"at","op":"session/attach","session":"s1","client":"bob"}|});
      ignore (both "list" {|{"id":"ls","op":"session/list"}|});
      ignore
        (both "detach"
           {|{"id":"dt","op":"session/detach","session":"s1","client":"bob"}|});
      (* only the writer may mutate — enforced identically through the
         gateway *)
      let denied =
        Gateway.handle_line gw
          {|{"id":"x","op":"session/edit","session":"s1","client":"carol","edits":["merge P2 P1"]}|}
      in
      Alcotest.(check (option string)) "non-writer rejected"
        (Some "bad_request")
        (Protocol.response_error_code (parse_response denied));
      (* forced migration through the snapshot handoff *)
      let ring = Ring.create ~vnodes:64 socks in
      let source =
        match Ring.lookup ring "s1" with
        | Some b -> b
        | None -> Alcotest.fail "ring lookup failed"
      in
      let target =
        match Ring.lookup ~avoid:[ source ] ring "s1" with
        | Some b -> b
        | None -> Alcotest.fail "no migration target"
      in
      let migrated =
        parse_response
          (Gateway.handle_line gw
             {|{"id":"m","op":"gateway/migrate","session":"s1"}|})
      in
      Alcotest.(check (option bool)) "migrate ok" (Some true)
        (Protocol.response_ok migrated);
      Alcotest.(check (option string)) "migrated to the ring's fallback"
        (Some target)
        (Option.bind (field migrated [ "result"; "to" ]) Json.to_string_opt);
      (* the session still answers identically after migration: the edit
         history survived the snapshot (undo restores P2), the writer
         migrated with it (alice may still edit) *)
      ignore (both "run after migrate" {|{"id":"r2","op":"session/run","session":"s1"}|});
      ignore
        (both "undo after migrate"
           {|{"id":"u2","op":"session/undo","session":"s1","client":"alice"}|});
      ignore
        (both "edit after migrate"
           {|{"id":"e2","op":"session/edit","session":"s1","client":"alice","edits":["merge P2 P1"]}|});
      (* kill the owning backend: it snapshots s1 on shutdown; the next
         session op must fail over to the surviving backend through the
         shared state dir, byte-identically *)
      List.iter2
        (fun sock (sv, th) ->
          if sock = target then begin
            Server.stop sv;
            Thread.join th
          end)
        socks
        (List.combine servers threads);
      ignore
        (both "run after owner death" {|{"id":"r3","op":"session/run","session":"s1"}|});
      let stats = parse_response (Gateway.handle_line gw {|{"op":"stats"}|}) in
      Alcotest.(check (option int)) "one failover" (Some 1)
        (Option.bind (field stats [ "result"; "failovers" ]) Json.to_int_opt);
      Alcotest.(check (option int)) "one migration" (Some 1)
        (Option.bind (field stats [ "result"; "migrations" ]) Json.to_int_opt);
      (* close through the gateway: the route and the snapshot are gone *)
      ignore
        (both "close"
           {|{"id":"c","op":"session/close","session":"s1","client":"alice"}|});
      let after =
        Gateway.handle_line gw {|{"id":"z","op":"session/run","session":"s1"}|}
      in
      Alcotest.(check bool) "closed session is gone" true (not (ok_of after)))

(* A dead backend is caught by the health sweep, routed around for
   stateless work, and failed over preemptively for sessions — without
   waiting for a request to time out against the corpse.  The sweep is
   the same code path the periodic prober drives; calling it directly
   keeps the test deterministic. *)
let test_gateway_health_marks_dead_and_fails_over () =
  with_cluster ~health_interval_s:3600. 2 (fun ~gw ~socks ~servers ~threads ->
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i =
          i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
        in
        nn = 0 || go 0
      in
      (* every backend answers its ping: nothing is dead *)
      Alcotest.(check (list string)) "all backends live" []
        (Gateway.check_health gw);
      (* open a session so one backend becomes an owner we can kill *)
      let opened =
        parse_response
          (Gateway.handle_line gw
             {|{"id":"o","op":"session/open","benchmark":"ar","partitions":2,"client":"alice"}|})
      in
      let sid =
        match
          Option.bind (field opened [ "result"; "session" ]) Json.to_string_opt
        with
        | Some s -> s
        | None -> Alcotest.fail "session/open gave no id"
      in
      let ring = Ring.create ~vnodes:64 socks in
      let owner =
        match Ring.lookup ring sid with
        | Some b -> b
        | None -> Alcotest.fail "ring lookup failed"
      in
      (* kill the owner; it snapshots the session on shutdown *)
      List.iter2
        (fun sock (sv, th) ->
          if sock = owner then begin
            Server.stop sv;
            Thread.join th
          end)
        socks
        (List.combine servers threads);
      (* the sweep marks exactly the killed backend dead *)
      Alcotest.(check (list string)) "owner marked dead" [ owner ]
        (Gateway.check_health gw);
      (* stateless work prefers the live backend — no timeout, no error *)
      let explored =
        Gateway.handle_line gw
          {|{"id":"e","op":"explore","benchmark":"ar","partitions":2}|}
      in
      Alcotest.(check bool) "stateless op routes around the dead backend"
        true (ok_of explored);
      (* the session op never contacts the dead owner: it fails over
         preemptively through the shared snapshot *)
      let run =
        Gateway.handle_line gw
          (Printf.sprintf
             {|{"id":"r","op":"session/run","session":"%s"}|} sid)
      in
      Alcotest.(check bool) "session fails over preemptively" true
        (ok_of run);
      let stats_raw = Gateway.handle_line gw {|{"op":"stats"}|} in
      let stats = parse_response stats_raw in
      Alcotest.(check (option int)) "failover counted" (Some 1)
        (Option.bind (field stats [ "result"; "failovers" ]) Json.to_int_opt);
      (match field stats [ "result"; "dead" ] with
      | Some (Json.Array [ Json.String b ]) ->
          Alcotest.(check string) "stats lists the dead backend" owner b
      | _ -> Alcotest.fail "stats result.dead missing or not a 1-element array");
      Alcotest.(check bool) "stats text tags the dead backend" true
        (contains (text_of stats_raw) "(unreachable)");
      (* resurrect the backend on the same socket: the next sweep marks
         it live again and the dead set empties *)
      let dir = Filename.dirname owner in
      let revived =
        Server.create
          {
            Server.default_config with
            socket_path = Some owner;
            jobs = 1;
            log = None;
            handle_signals = false;
            state_dir = Some (Filename.concat dir "state");
          }
      in
      let revived_th = Thread.create Server.serve revived in
      Fun.protect
        ~finally:(fun () ->
          Server.stop revived;
          Thread.join revived_th)
        (fun () ->
          Alcotest.(check (list string)) "revived backend marked live" []
            (Gateway.check_health gw)))

(* ------------------------------------------------------------------ *)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "chop_gateway"
    [
      ( "ring",
        [
          tc "deterministic across instances" `Quick test_ring_deterministic;
          tc "spread and avoid" `Quick test_ring_spread_and_avoid;
          tc "two nodes both own keys" `Quick test_ring_balance;
          tc "validation" `Quick test_ring_validation;
        ] );
      ( "retry",
        [
          tc "backoff schedule is deterministic" `Quick
            test_backoff_deterministic;
          tc "overloaded then ok" `Quick test_retry_overloaded_then_ok;
          tc "budget exhausted keeps the outcome" `Quick
            test_retry_budget_exhausted_keeps_outcome;
          tc "connect refused retries then errors" `Quick
            test_retry_connect_refused;
          tc "zero retries is one-shot" `Quick test_retry_zero_is_one_shot;
        ] );
      ( "merge",
        [
          tc "slice coverage validation" `Quick test_merge_coverage;
          tc "row wire round-trip" `Quick test_row_wire_roundtrip;
        ] );
      ( "session-table",
        [
          tc "busy session never evicted (drain race)" `Quick
            test_prune_never_evicts_busy_session;
          tc "observed session never evicted" `Quick
            test_prune_never_evicts_observed_session;
        ] );
      ( "gateway",
        [
          tc "stateless parity over 2 backends" `Quick
            test_gateway_stateless_parity;
          tc "fan-out merge byte-identical" `Quick test_gateway_fanout_parity;
          tc "sessions: sticky, migrate, failover" `Quick
            test_gateway_sessions_migrate_failover;
          tc "health: dead-marking and preemptive failover" `Quick
            test_gateway_health_marks_dead_and_fails_over;
        ] );
    ]
