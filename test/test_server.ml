(* Tests for the serving layer: protocol decoding, scheduler admission
   and deadlines (the K+C+1 overload boundary), drain semantics, the
   full handle_line pipeline, and byte-identity between concurrent
   socket clients and the direct renderer. *)

module Json = Chop_util.Json
module Protocol = Chop_server.Protocol
module Scheduler = Chop_server.Scheduler
module Server = Chop_server.Server
module Client = Chop_server.Client
module Ops = Chop_server.Ops

let parse_response line =
  match Json.parse line with
  | Ok v -> v
  | Error msg -> Alcotest.failf "unparseable response %S: %s" line msg

let until ?(timeout = 5.) cond =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if cond () then true
    else if Unix.gettimeofday () -. t0 > timeout then false
    else begin
      Thread.delay 0.005;
      go ()
    end
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Protocol *)

let test_protocol_defaults () =
  match Protocol.parse_request {|{"op":"explore"}|} with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok req ->
      Alcotest.(check string) "default id" "-" req.Protocol.id;
      Alcotest.(check bool) "no deadline" true (req.Protocol.deadline_ms = None);
      let p = req.Protocol.params in
      Alcotest.(check string) "default benchmark" "ar" p.Protocol.benchmark;
      Alcotest.(check int) "default partitions" 2 p.Protocol.partitions;
      Alcotest.(check int) "default package" 84 p.Protocol.package

let test_protocol_roundtrip () =
  let req =
    {
      Protocol.id = "r7";
      op = Protocol.Sensitivity;
      deadline_ms = Some 250.;
      params =
        {
          Protocol.default_params with
          benchmark = "ewf";
          heuristic = "b";
          keep_all = true;
          parameter = "pins";
          values = [ 64.; 84. ];
        };
    }
  in
  match Protocol.request_of_json (Protocol.request_to_json req) with
  | Error msg -> Alcotest.failf "round-trip failed: %s" msg
  | Ok req' ->
      Alcotest.(check bool) "request round-trips" true (req = req')

let test_protocol_errors () =
  let fails s =
    match Protocol.parse_request s with
    | Ok _ -> Alcotest.failf "%S unexpectedly parsed" s
    | Error _ -> ()
  in
  fails "[1,2]";
  fails {|{"op":"no-such-op"}|};
  fails {|{"op":"explore","partitions":"two"}|};
  fails "not json at all"

(* ------------------------------------------------------------------ *)
(* Scheduler *)

(* a gate the test opens to release blocked jobs *)
type gate = { mu : Mutex.t; cv : Condition.t; mutable opened : bool }

let gate () = { mu = Mutex.create (); cv = Condition.create (); opened = false }

let gate_wait g =
  Mutex.lock g.mu;
  while not g.opened do
    Condition.wait g.cv g.mu
  done;
  Mutex.unlock g.mu

let gate_open g =
  Mutex.lock g.mu;
  g.opened <- true;
  Condition.broadcast g.cv;
  Mutex.unlock g.mu

let test_scheduler_overload_boundary () =
  let queue = 3 and concurrency = 2 in
  let sched = Scheduler.create ~queue ~concurrency in
  let g = gate () in
  let submit () =
    Scheduler.submit sched
      ~expired:(fun ~queue_seconds:_ -> ())
      ~run:(fun ~interrupt:_ ~queue_seconds:_ -> gate_wait g)
      ()
  in
  (* fill every running slot, then every queue slot *)
  for i = 1 to concurrency do
    Alcotest.(check bool)
      (Printf.sprintf "runner %d accepted" i)
      true
      (submit () = Scheduler.Accepted)
  done;
  Alcotest.(check bool) "workers picked the jobs up" true
    (until (fun () -> Scheduler.in_flight sched = concurrency));
  for i = 1 to queue do
    Alcotest.(check bool)
      (Printf.sprintf "queued %d accepted" i)
      true
      (submit () = Scheduler.Accepted)
  done;
  Alcotest.(check int) "queue full" queue (Scheduler.queued sched);
  (* request K+C+1 is the first to be rejected *)
  Alcotest.(check bool) "request K+C+1 overloaded" true
    (submit () = Scheduler.Overloaded);
  gate_open g;
  Scheduler.drain sched;
  let st = Scheduler.stats sched in
  Alcotest.(check int) "all admitted jobs completed" (queue + concurrency)
    st.Scheduler.completed;
  Alcotest.(check int) "one rejection" 1 st.Scheduler.rejected;
  Alcotest.(check int) "none failed" 0 st.Scheduler.failed;
  (* after drain, admission answers Draining *)
  Alcotest.(check bool) "post-drain submit refused" true
    (submit () = Scheduler.Draining)

let test_scheduler_deadline_expires_queued () =
  let sched = Scheduler.create ~queue:4 ~concurrency:1 in
  let g = gate () in
  let blocker =
    Scheduler.submit sched
      ~expired:(fun ~queue_seconds:_ -> ())
      ~run:(fun ~interrupt:_ ~queue_seconds:_ -> gate_wait g)
      ()
  in
  Alcotest.(check bool) "blocker admitted" true
    (blocker = Scheduler.Accepted);
  Alcotest.(check bool) "blocker running" true
    (until (fun () -> Scheduler.in_flight sched = 1));
  let expired_flag = ref false and ran_flag = ref false in
  let doomed =
    Scheduler.submit sched
      ~deadline:(Unix.gettimeofday () -. 1.)
      ~expired:(fun ~queue_seconds:_ -> expired_flag := true)
      ~run:(fun ~interrupt:_ ~queue_seconds:_ -> ran_flag := true)
      ()
  in
  Alcotest.(check bool) "doomed admitted" true (doomed = Scheduler.Accepted);
  gate_open g;
  Scheduler.drain sched;
  Alcotest.(check bool) "expired callback ran" true !expired_flag;
  Alcotest.(check bool) "run callback skipped" false !ran_flag;
  Alcotest.(check int) "counted expired" 1 (Scheduler.stats sched).Scheduler.expired

let test_scheduler_drain_completes_in_flight () =
  let sched = Scheduler.create ~queue:2 ~concurrency:1 in
  let finished = ref 0 in
  let slow () =
    Scheduler.submit sched
      ~expired:(fun ~queue_seconds:_ -> ())
      ~run:(fun ~interrupt:_ ~queue_seconds:_ ->
        Thread.delay 0.05;
        incr finished)
      ()
  in
  (* one running, one queued; drain must let both finish *)
  Alcotest.(check bool) "first admitted" true (slow () = Scheduler.Accepted);
  Alcotest.(check bool) "second admitted" true (slow () = Scheduler.Accepted);
  Scheduler.drain sched;
  Alcotest.(check int) "both completed before drain returned" 2 !finished

(* ------------------------------------------------------------------ *)
(* Server pipeline through handle_line (no sockets) *)

let make_server () =
  Server.create
    {
      Server.default_config with
      socket_path = None;
      jobs = 1;
      log = None;
      handle_signals = false;
    }

let field resp path =
  List.fold_left
    (fun v name -> Option.bind v (Json.member name))
    (Some resp) path

let test_handle_line_ping_and_stats () =
  let server = make_server () in
  let pong = parse_response (Server.handle_line server {|{"id":"p","op":"ping"}|}) in
  Alcotest.(check (option bool)) "ping ok" (Some true)
    (Protocol.response_ok pong);
  Alcotest.(check (option string)) "ping id" (Some "p")
    (Protocol.response_id pong);
  let stats = parse_response (Server.handle_line server {|{"op":"stats"}|}) in
  Alcotest.(check (option bool)) "stats ok" (Some true)
    (Protocol.response_ok stats);
  Alcotest.(check bool) "stats exposes the scheduler" true
    (field stats [ "result"; "scheduler"; "accepted" ] <> None);
  Alcotest.(check bool) "stats exposes cache counters" true
    (field stats [ "result"; "cache"; "hits" ] <> None)

let test_handle_line_bad_requests () =
  let server = make_server () in
  let code line =
    Protocol.response_error_code (parse_response (Server.handle_line server line))
  in
  Alcotest.(check (option string)) "malformed json" (Some "bad_request")
    (code "{nope");
  Alcotest.(check (option string)) "unknown op" (Some "bad_request")
    (code {|{"op":"frobnicate"}|});
  Alcotest.(check (option string)) "wrong field type" (Some "bad_request")
    (code {|{"op":"explore","partitions":"two"}|});
  Alcotest.(check (option string)) "unknown benchmark" (Some "bad_request")
    (code {|{"op":"explore","benchmark":"no-such-graph"}|})

let test_handle_line_deadline () =
  let server = make_server () in
  (* a non-positive deadline is already expired at admission: the request
     must come back as a structured deadline error, never run *)
  let resp =
    parse_response
      (Server.handle_line server
         {|{"id":"d1","op":"explore","benchmark":"ewf","deadline_ms":0}|})
  in
  Alcotest.(check (option bool)) "not ok" (Some false)
    (Protocol.response_ok resp);
  Alcotest.(check (option string)) "deadline code" (Some "deadline")
    (Protocol.response_error_code resp);
  Alcotest.(check (option string)) "id echoed" (Some "d1")
    (Protocol.response_id resp)

let explore_request ~id =
  Printf.sprintf
    {|{"id":"%s","op":"explore","benchmark":"ewf","partitions":2,"keep_all":true}|}
    id

let expected_explore_text () =
  let params =
    { Protocol.default_params with benchmark = "ewf"; keep_all = true }
  in
  let spec = Result.get_ok (Ops.spec_of_params params) in
  let config = Result.get_ok (Ops.config_of_params ~jobs:1 params) in
  let report = Chop.Explore.with_engine config spec Chop.Explore.Engine.run in
  Ops.render_explore spec ~keep_all:true ~csv:false ~verbose:false report

let test_handle_line_matches_direct_render () =
  let server = make_server () in
  let text id =
    let resp = parse_response (Server.handle_line server (explore_request ~id)) in
    Alcotest.(check (option bool)) "ok" (Some true) (Protocol.response_ok resp);
    Option.get (Protocol.response_text resp)
  in
  let expected = expected_explore_text () in
  Alcotest.(check string) "server text = direct render" expected (text "x1");
  (* the repeat answers from the warm engine — and stays byte-identical *)
  Alcotest.(check string) "warm repeat identical" expected (text "x2");
  let stats = parse_response (Server.handle_line server {|{"op":"stats"}|}) in
  Alcotest.(check bool) "one warm engine serves both" true
    (Option.bind (field stats [ "result"; "engines" ]) Json.to_int_opt = Some 1)

(* ------------------------------------------------------------------ *)
(* Socket transport: concurrent clients *)

(* ------------------------------------------------------------------ *)
(* Interactive sessions through handle_line *)

let json_string resp path =
  Option.bind (field resp path) Json.to_string_opt

let test_session_ops_pipeline () =
  let server = make_server () in
  let opened =
    parse_response
      (Server.handle_line server
         {|{"id":"o","op":"session/open","benchmark":"ewf","partitions":3}|})
  in
  Alcotest.(check (option bool)) "open ok" (Some true)
    (Protocol.response_ok opened);
  let sid =
    match json_string opened [ "result"; "session" ] with
    | Some sid -> sid
    | None -> Alcotest.fail "no session id in session/open response"
  in
  let stats = parse_response (Server.handle_line server {|{"op":"stats"}|}) in
  Alcotest.(check (option bool)) "stats counts the session"
    (Some true)
    (Option.map (fun v -> v = Json.Int 1) (field stats [ "result"; "sessions" ]));
  (* an invalid edit command is a structured bad_request, not a crash *)
  let bad =
    parse_response
      (Server.handle_line server
         (Printf.sprintf
            {|{"op":"session/edit","session":"%s","edits":["frobnicate"]}|}
            sid))
  in
  Alcotest.(check (option string)) "bad edit command" (Some "bad_request")
    (Protocol.response_error_code bad);
  (* a well-formed but invalid edit is rejected with its position *)
  let invalid =
    parse_response
      (Server.handle_line server
         (Printf.sprintf
            {|{"op":"session/edit","session":"%s","edits":["merge P9 P1"]}|}
            sid))
  in
  Alcotest.(check (option string)) "invalid edit rejected" (Some "bad_request")
    (Protocol.response_error_code invalid);
  (* the real edit reports the dirty partitions *)
  let edited =
    parse_response
      (Server.handle_line server
         (Printf.sprintf
            {|{"op":"session/edit","session":"%s","edits":["merge P3 P2"]}|}
            sid))
  in
  Alcotest.(check (option bool)) "edit ok" (Some true)
    (Protocol.response_ok edited);
  Alcotest.(check bool) "edit reports repredict set" true
    (field edited [ "result"; "repredict" ]
    = Some (Json.Array [ Json.String "P2" ]));
  (* session/run is byte-identical to a cold exploration of the edited
     spec under the open-time parameters *)
  let run =
    parse_response
      (Server.handle_line server
         (Printf.sprintf {|{"op":"session/run","session":"%s"}|} sid))
  in
  Alcotest.(check (option bool)) "run ok" (Some true) (Protocol.response_ok run);
  let expected =
    let params =
      { Protocol.default_params with benchmark = "ewf"; partitions = 3 }
    in
    let spec0 = Result.get_ok (Ops.spec_of_params params) in
    let spec =
      match
        Chop.Spec.update spec0
          [ Chop.Spec.Merge_parts { src = "P3"; dst = "P2" } ]
      with
      | Ok (s, _) -> s
      | Error e -> Alcotest.failf "%a" Chop.Spec.pp_update_error e
    in
    let config = Result.get_ok (Ops.config_of_params ~jobs:1 params) in
    let report = Chop.Explore.with_engine config spec Chop.Explore.Engine.run in
    Ops.render_explore spec ~keep_all:false ~csv:false ~verbose:false report
  in
  Alcotest.(check (option string)) "run text byte-identical" (Some expected)
    (Protocol.response_text run);
  (* close frees the session; later ops on the id are structured errors *)
  let closed =
    parse_response
      (Server.handle_line server
         (Printf.sprintf {|{"op":"session/close","session":"%s"}|} sid))
  in
  Alcotest.(check (option bool)) "close ok" (Some true)
    (Protocol.response_ok closed);
  let after =
    parse_response
      (Server.handle_line server
         (Printf.sprintf {|{"op":"session/run","session":"%s"}|} sid))
  in
  Alcotest.(check (option string)) "run after close" (Some "bad_request")
    (Protocol.response_error_code after);
  let stats = parse_response (Server.handle_line server {|{"op":"stats"}|}) in
  Alcotest.(check (option bool)) "stats back to zero sessions"
    (Some true)
    (Option.map (fun v -> v = Json.Int 0) (field stats [ "result"; "sessions" ]))

let test_session_lru_eviction () =
  let server =
    Server.create
      {
        Server.default_config with
        socket_path = None;
        jobs = 1;
        log = None;
        handle_signals = false;
        max_sessions = 2;
      }
  in
  let open_one () =
    let resp =
      parse_response
        (Server.handle_line server
           {|{"op":"session/open","benchmark":"ewf","partitions":2}|})
    in
    Option.get (json_string resp [ "result"; "session" ])
  in
  let s1 = open_one () in
  let s2 = open_one () in
  let s3 = open_one () in
  (* the cap is 2: opening s3 evicted the least-recently-used (s1) *)
  let code sid =
    Protocol.response_error_code
      (parse_response
         (Server.handle_line server
            (Printf.sprintf {|{"op":"session/run","session":"%s"}|} sid)))
  in
  Alcotest.(check (option string)) "oldest evicted" (Some "bad_request") (code s1);
  Alcotest.(check (option string)) "newer survives" None (code s2);
  Alcotest.(check (option string)) "newest survives" None (code s3)

(* ------------------------------------------------------------------ *)
(* Client transport failures *)

(* a one-shot fake server speaking the given bytes (or closing straight
   away), for driving the client's transport-failure paths *)
let with_fake_server ~reply f =
  let socket_path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "chop-fake-%d-%d.sock" (Unix.getpid ()) (Hashtbl.hash reply))
  in
  if Sys.file_exists socket_path then Sys.remove socket_path;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX socket_path);
  Unix.listen fd 1;
  let server =
    Thread.create
      (fun () ->
        let cfd, _ = Unix.accept fd in
        let ic = Unix.in_channel_of_descr cfd in
        (try ignore (input_line ic) with End_of_file -> ());
        (match reply with
        | Some bytes ->
            let oc = Unix.out_channel_of_descr cfd in
            output_string oc bytes;
            flush oc
        | None -> ());
        try Unix.close cfd with Unix.Unix_error _ -> ())
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      Thread.join server;
      (try Unix.close fd with Unix.Unix_error _ -> ());
      try Sys.remove socket_path with Sys_error _ -> ())
    (fun () -> f socket_path)

let test_client_garbage_bytes () =
  with_fake_server ~reply:(Some "this is not json\n") (fun socket_path ->
      let conn = Client.connect socket_path in
      Fun.protect
        ~finally:(fun () -> Client.close conn)
        (fun () ->
          match Client.rpc conn (Json.parse_exn {|{"op":"ping"}|}) with
          | Ok _ -> Alcotest.fail "garbage bytes accepted as a response"
          | Error msg ->
              Alcotest.(check bool) "structured malformed-response error" true
                (String.length msg > 0
                && String.starts_with ~prefix:"malformed response" msg)))

let test_client_closed_before_response () =
  with_fake_server ~reply:None (fun socket_path ->
      let conn = Client.connect socket_path in
      Fun.protect
        ~finally:(fun () -> Client.close conn)
        (fun () ->
          match Client.rpc conn (Json.parse_exn {|{"op":"ping"}|}) with
          | Ok _ -> Alcotest.fail "no response yet rpc returned Ok"
          | Error msg ->
              Alcotest.(check string) "structured close error"
                "connection closed before a response arrived" msg))

let test_socket_concurrent_clients () =
  let socket_path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "chop-test-%d.sock" (Unix.getpid ()))
  in
  let server =
    Server.create
      {
        Server.default_config with
        socket_path = Some socket_path;
        concurrency = 2;
        queue = 8;
        jobs = 1;
        log = None;
        handle_signals = false;
      }
  in
  let server_thread = Thread.create Server.serve server in
  let clients = 4 in
  let results = Array.make clients (Error "never ran") in
  let worker i () =
    results.(i) <-
      (let conn = Client.connect socket_path in
       Fun.protect
         ~finally:(fun () -> Client.close conn)
         (fun () ->
           let id = Printf.sprintf "c%d" i in
           match
             Client.rpc conn
               (Json.parse_exn (explore_request ~id))
           with
           | Error msg -> Error msg
           | Ok resp when Protocol.response_ok resp <> Some true ->
               Error (Json.print resp)
           | Ok resp ->
               if Protocol.response_id resp <> Some id then
                 Error "response id mismatch"
               else Ok (Option.get (Protocol.response_text resp))))
  in
  let threads = List.init clients (fun i -> Thread.create (worker i) ()) in
  List.iter Thread.join threads;
  Server.stop server;
  Thread.join server_thread;
  let expected = expected_explore_text () in
  Array.iteri
    (fun i r ->
      match r with
      | Error msg -> Alcotest.failf "client %d failed: %s" i msg
      | Ok text ->
          Alcotest.(check string)
            (Printf.sprintf "client %d byte-identical" i)
            expected text)
    results;
  Alcotest.(check bool) "socket removed on shutdown" false
    (Sys.file_exists socket_path)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "chop_server"
    [
      ( "protocol",
        [
          Alcotest.test_case "defaults" `Quick test_protocol_defaults;
          Alcotest.test_case "round-trip" `Quick test_protocol_roundtrip;
          Alcotest.test_case "errors" `Quick test_protocol_errors;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "overload boundary at K+C+1" `Quick
            test_scheduler_overload_boundary;
          Alcotest.test_case "deadline expires while queued" `Quick
            test_scheduler_deadline_expires_queued;
          Alcotest.test_case "drain completes in-flight work" `Quick
            test_scheduler_drain_completes_in_flight;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "ping and stats" `Quick
            test_handle_line_ping_and_stats;
          Alcotest.test_case "bad requests" `Quick
            test_handle_line_bad_requests;
          Alcotest.test_case "expired deadline is structured" `Quick
            test_handle_line_deadline;
          Alcotest.test_case "matches the direct render" `Quick
            test_handle_line_matches_direct_render;
        ] );
      ( "sessions",
        [
          Alcotest.test_case "open/edit/run/close pipeline" `Quick
            test_session_ops_pipeline;
          Alcotest.test_case "LRU eviction past the cap" `Quick
            test_session_lru_eviction;
        ] );
      ( "client",
        [
          Alcotest.test_case "garbage bytes are a structured error" `Quick
            test_client_garbage_bytes;
          Alcotest.test_case "close before response is structured" `Quick
            test_client_closed_before_response;
        ] );
      ( "socket",
        [
          Alcotest.test_case "concurrent clients byte-identical" `Quick
            test_socket_concurrent_clients;
        ] );
    ]
